//! Parallel verification driver.
//!
//! Entry point: [`crate::session::Verifier::threads`] — a session with
//! more than one worker dispatches into this module's frontier
//! machinery; the `verify_*_par` free functions below are deprecated
//! wrappers over such sessions.
//!
//! Runs both verification steps across a pool of worker threads:
//!
//! * **step 1** fetches each pipeline element's summary from the
//!   content-addressed store — executing misses in worker-private
//!   term pools — and migrates the results into the master pool in
//!   stage order ([`crate::summary::summarize_pipeline_par`]); since
//!   the sequential driver takes the same fetch-and-rebase path, the
//!   master pool is identical across thread counts *and* across
//!   cache-cold vs cache-warm [`crate::SummaryStore`] states;
//! * **step 2** splits the composed-path search into a frontier of
//!   independent subtree and feasibility-check tasks, drained by
//!   workers from a shared queue (each worker owns a clone of the
//!   master pool and its own solver, so no locks are held during
//!   solving).
//!
//! **Determinism.** Tasks are enumerated in exactly the order the
//! sequential search visits them, results are merged in that order,
//! both drivers classify segments through the single
//! `step2::classify` engine, and a winning violation is
//! re-extracted against the unmutated master pool — so for any
//! pipeline whose *parallel* run stays within the path budget, the
//! parallel result (verdict *and* counterexample packet) is
//! independent of thread count, split depth and scheduling, and its
//! proof status (proved / disproved / unknown) equals the sequential
//! driver's.
//!
//! Caveats, both confined to pathological inputs:
//!
//! * The concrete counterexample *packet* may differ from the
//!   sequential one when the property leaves input bytes
//!   unconstrained: solver models are sensitive to term-pool interning
//!   order, which step-1 migration changes. Both packets trigger the
//!   same violation. Incremental sessions
//!   ([`crate::VerifyConfig::incremental`], the default) add no new
//!   nondeterminism here: a session's in-flight models depend on the
//!   learnt clauses and saved phases of earlier queries, so the
//!   winning violation is always re-solved on a fresh solver — at
//!   merge time here (`reextract`), and inline in the sequential
//!   engine — making reported packets identical between incremental
//!   and fresh modes and across thread counts.
//! * `composed_paths` accounting: the frontier split charges shallow
//!   classify events exactly as the sequential search does (and
//!   `run_task` does not re-count them), so on runs that explore the
//!   whole tree — proofs, and budget-free clean searches — the
//!   reported count is identical across engines and thread counts;
//!   the differential harness in `crates/bench` asserts this. On
//!   *disproved* runs workers may have started tasks past the winning
//!   violation before the cutoff propagates, so the parallel count
//!   can exceed the sequential one by the work of those in-flight
//!   tasks. And near `max_composed_paths` *which* tasks hit the
//!   shared budget first is scheduling dependent — the verdict may
//!   degrade to `Unknown("step-2 path budget exceeded")`
//!   nondeterministically. Far from the edge (the normal case, with
//!   the default budget of 2^20 paths) neither effect is observable
//!   on proved pipelines.
//!
//! **Conflict-driven pruning** ([`crate::VerifyConfig::core_pruning`],
//! the default) adds no verdict nondeterminism on top of the above as
//! long as every query is *decided* (Sat/Unsat): pruning only ever
//! skips queries whose UNSAT answer is entailed by a learned core, so
//! the search takes exactly the same branches whether a given skip
//! happens or not, composed-path counts are unaffected (pruned
//! compositions still count), and the winning counterexample is still
//! re-extracted on the master pool with pruning off — reported
//! packets remain identical across thread counts and pruning modes.
//! What *is* scheduling dependent is the **accounting**: which worker
//! learns a core first, how many siblings see it in time (cores
//! propagate at task boundaries only), and hence the per-run
//! `cores_learned` / `core_hits` / `subtrees_pruned` counters and the
//! solver-side query counters. Near the CDCL conflict budget the
//! guarantee weakens exactly as it does for incremental sessions: a
//! query the unpruned run answered `Unknown` may be pruned to a
//! definite `Unsat` (changing which subtrees expand, and with them
//! path counts), and skipped solves change the learnt-clause state
//! behind *later* budget-limited queries in either direction —
//! budget-free runs (every query decided, the normal case with the
//! default 200k-conflict budget) never diverge.
//!
//! **Portfolio racing** ([`crate::VerifyConfig::portfolio`], default
//! off) inherits the session-layer guarantee
//! (see `bvsolve::session`): a race only ever changes *which* solver
//! decides a query and how fast, never the Sat/Unsat answer, so
//! verdicts, composed-path counts and — because every winning
//! violation is re-solved on a fresh solver — counterexample bytes
//! are identical with the portfolio on or off, at any racer count,
//! under either engine; the differential harness asserts exactly
//! this. What the race does perturb is accounting and wall time:
//! `portfolio_races`, `races_won_by`, the glue-traffic counters and
//! the solver-side decision/propagation totals all depend on which
//! diversified clone wins, which is scheduling dependent. The same
//! budget caveat as above applies: a race spends more total conflicts
//! than one solver, so near a conflict budget it may decide a query
//! the single-solver run leaves `Unknown` — never the reverse
//! verdict.

use crate::compose::ComposedState;
use crate::cores::{CoreStats, CoreStore, Pruner};
use crate::prefilter::{Prefilter, PrefilterStats};
use crate::report::{CounterExample, VerifyReport};
use crate::session::{Property, Verifier};
use crate::step2::{
    check, classify, search, Feas, FilterProperty, Node, PropKind, QuerySolver, SearchOutcome,
    StepEvent, VerifyConfig,
};
use crate::summary::PipelineSummaries;
use bvsolve::{BvSolver, SolverLayerStats, TermPool};
use dataplane::Pipeline;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Thread-pool settings for the parallel driver.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Worker threads; `0` uses all available cores.
    pub threads: usize,
    /// Composition depth at which the step-2 search is split into
    /// independent subtree tasks. Larger values produce more (smaller)
    /// tasks: better load balancing, slightly more duplicated prefix
    /// work. The verdict does not depend on this value.
    pub split_depth: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: 0,
            split_depth: 2,
        }
    }
}

impl ParallelConfig {
    /// A config pinned to `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads,
            ..Default::default()
        }
    }

    /// The worker count this config resolves to (`0` → all cores).
    pub fn effective_threads(&self) -> usize {
        crate::summary::effective_threads(self.threads)
    }
}

/// One unit of step-2 work, produced by the frontier split.
pub(crate) enum Task {
    /// A single feasibility check. `violation: Some(desc)` means a
    /// feasible state disproves the property with that description;
    /// `None` means a feasible state only blocks a full proof.
    Check {
        state: ComposedState,
        violation: Option<String>,
    },
    /// A whole search subtree rooted at `Node`.
    Explore(Node),
}

/// Per-task outcome, merged in task order.
enum TaskResult {
    Clean,
    Violation(CounterExample),
    Unknown,
    Budget,
    /// Skipped because an earlier-indexed task already found a
    /// violation (cannot affect the merged verdict).
    Skipped,
}

/// Enumerates step-2 tasks in exactly the order the sequential search
/// visits them: the same LIFO stack discipline, with suspect/blocker
/// checks emitted inline and subtrees emitted when a node at
/// `split_depth` compositions is popped.
///
/// Suspect/blocker checks are deferred to worker tasks, but shallow
/// *continuations* are feasibility-pruned right here, with the same
/// `check(.., subtree: true)` call the sequential search makes before
/// pushing a node — so an infeasible shallow prefix is cut after one
/// query instead of becoming an Explore task that discovers every
/// successor unsatisfiable.
///
/// `composed` is bumped once per classify event exactly as the
/// sequential search does it, and `run_task` does *not* count the
/// `Check` tasks emitted here again. Together with the pruned
/// continuations this makes the reported `composed_paths` identical
/// across engines and thread counts on exhaustive (proved) runs,
/// which the differential harness asserts.
#[allow(clippy::too_many_arguments)]
pub(crate) fn expand_frontier(
    pool: &mut TermPool,
    solver: &mut QuerySolver,
    pruner: &mut Pruner,
    prefilter: &mut Prefilter,
    pipeline: &Pipeline,
    sums: &PipelineSummaries,
    kind: &PropKind,
    init: ComposedState,
    reach: &[bool],
    split_depth: usize,
    composed: &AtomicUsize,
) -> Vec<Task> {
    let mut tasks = Vec::new();
    let mut stack = vec![Node {
        stage: 0,
        iter: 0,
        state: init,
    }];
    while let Some(node) = stack.pop() {
        if node.state.trace.len() >= split_depth {
            tasks.push(Task::Explore(node));
            continue;
        }
        for (i, seg) in sums.stages[node.stage].segments.iter().enumerate() {
            match classify(pool, pipeline, sums, kind, &node, i, seg, reach) {
                StepEvent::ViolationCheck(what, next) => {
                    composed.fetch_add(1, Ordering::Relaxed);
                    tasks.push(Task::Check {
                        state: next,
                        violation: Some(what),
                    });
                }
                StepEvent::BlockerCheck(next) => {
                    composed.fetch_add(1, Ordering::Relaxed);
                    tasks.push(Task::Check {
                        state: next,
                        violation: None,
                    });
                }
                StepEvent::Continue(n) => {
                    composed.fetch_add(1, Ordering::Relaxed);
                    match check(pool, solver, pruner, prefilter, &n.state, true) {
                        Feas::Sat(_) | Feas::Unknown => stack.push(n),
                        Feas::Unsat => {}
                    }
                }
                StepEvent::Inert => {}
            }
        }
    }
    tasks
}

#[derive(Clone, Copy)]
pub(crate) struct WorkerCtx<'a> {
    pub(crate) pipeline: &'a Pipeline,
    pub(crate) sums: &'a PipelineSummaries,
    pub(crate) cfg: &'a VerifyConfig,
    pub(crate) kind: &'a PropKind,
    pub(crate) reach: &'a [bool],
    pub(crate) composed: &'a AtomicUsize,
    /// The session's per-map-mode core store. Workers keep a local
    /// replica and exchange cores with it at task boundaries only,
    /// so no lock is held while solving.
    pub(crate) core_store: &'a Arc<Mutex<CoreStore>>,
}

fn run_task(
    task: &Task,
    pool: &mut TermPool,
    solver: &mut QuerySolver,
    pruner: &mut Pruner,
    prefilter: &mut Prefilter,
    ctx: &WorkerCtx,
) -> TaskResult {
    if ctx.composed.load(Ordering::Relaxed) >= ctx.cfg.max_composed_paths {
        return TaskResult::Budget;
    }
    match task {
        Task::Check { state, violation } => {
            // Already counted by `expand_frontier` at classify time —
            // counting here again would double-charge shallow checks
            // relative to the sequential engine.
            let feas = check(pool, solver, pruner, prefilter, state, false);
            match (feas, violation) {
                (Feas::Sat(m), Some(desc)) => {
                    let m = solver.confirm_model(pool, ctx.cfg, state, &ctx.sums.input, m);
                    TaskResult::Violation(CounterExample::from_model(
                        pool,
                        &ctx.sums.input,
                        &m,
                        desc.clone(),
                        state.trace.clone(),
                    ))
                }
                (Feas::Unsat, _) => TaskResult::Clean,
                (_, None) => TaskResult::Unknown,
                (Feas::Unknown, Some(_)) => TaskResult::Unknown,
            }
        }
        Task::Explore(node) => match search(
            pool,
            solver,
            pruner,
            prefilter,
            ctx.pipeline,
            ctx.sums,
            ctx.cfg,
            ctx.kind,
            vec![node.clone()],
            ctx.reach,
            ctx.composed,
        ) {
            SearchOutcome::Clean => TaskResult::Clean,
            SearchOutcome::Violation(cex) => TaskResult::Violation(cex),
            SearchOutcome::Budget => TaskResult::Budget,
            SearchOutcome::SolverUnknown => TaskResult::Unknown,
        },
    }
}

/// Drains `tasks` across `threads` workers and merges the results in
/// task order (ties between outcome classes resolved exactly as the
/// sequential search would: first violation wins, then budget, then
/// solver-unknown). Each worker owns its own query solver — in
/// incremental mode an [`bvsolve::SolveSession`] seeded by the first
/// frontier task it syncs to — plus a local [`CoreStore`] replica
/// synced with the session's shared store at task boundaries, so no
/// solver state is shared and no lock is held while solving. Cores
/// containing worker-private terms (interned below the split point by
/// that worker alone) never leave their worker; everything else is
/// published for siblings, later properties, and later engines.
/// Returns the merged outcome plus the workers' summed solver and
/// pruning counters.
pub(crate) fn drain_tasks(
    master: &TermPool,
    tasks: &[Task],
    threads: usize,
    ctx: &WorkerCtx,
) -> (SearchOutcome, SolverLayerStats, CoreStats, PrefilterStats) {
    let next = AtomicUsize::new(0);
    // Index of the earliest violation found so far: tasks after it
    // cannot influence the merged verdict and are skipped.
    let cutoff = AtomicUsize::new(usize::MAX);
    let threads = threads.min(tasks.len().max(1));
    // Terms at or above this index were interned by a single worker's
    // clone and are meaningless elsewhere: they gate core publishing.
    let shared_term_limit = master.len();
    let mut results: Vec<(usize, TaskResult)> = Vec::with_capacity(tasks.len());
    let mut stats = SolverLayerStats::default();
    let mut core_stats = CoreStats::default();
    let mut prefilter_stats = PrefilterStats::default();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let cutoff = &cutoff;
                s.spawn(move || {
                    let mut pool = master.clone();
                    let mut solver = QuerySolver::new(ctx.cfg);
                    let mut pruner = Pruner::new(
                        Arc::clone(ctx.core_store),
                        ctx.cfg.core_pruning,
                        shared_term_limit,
                    );
                    // Worker-private, but the corpus is the same
                    // deterministic function of the pipeline input on
                    // every worker, so hits don't depend on scheduling.
                    let mut prefilter =
                        Prefilter::new(ctx.cfg.concrete_prefilter, &ctx.sums.input, &ctx.cfg.sym);
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks.len() {
                            break;
                        }
                        if i > cutoff.load(Ordering::Relaxed) {
                            out.push((i, TaskResult::Skipped));
                            continue;
                        }
                        pruner.sync();
                        let r = run_task(
                            &tasks[i],
                            &mut pool,
                            &mut solver,
                            &mut pruner,
                            &mut prefilter,
                            ctx,
                        );
                        pruner.publish();
                        if matches!(r, TaskResult::Violation(_)) {
                            cutoff.fetch_min(i, Ordering::Relaxed);
                        }
                        out.push((i, r));
                    }
                    (out, solver.stats(), pruner.stats, prefilter.stats)
                })
            })
            .collect();
        for h in handles {
            let (out, worker_stats, worker_cores, worker_prefilter) =
                h.join().expect("step-2 worker panicked");
            results.extend(out);
            stats.merge(&worker_stats);
            core_stats.merge(&worker_cores);
            prefilter_stats.merge(&worker_prefilter);
        }
    });
    results.sort_by_key(|(i, _)| *i);

    let mut saw_budget = false;
    let mut saw_unknown = false;
    for (i, r) in results {
        match r {
            TaskResult::Violation(cex) => {
                return (
                    SearchOutcome::Violation(reextract(i, cex, master, tasks, ctx)),
                    stats,
                    core_stats,
                    prefilter_stats,
                );
            }
            TaskResult::Budget => saw_budget = true,
            TaskResult::Unknown => saw_unknown = true,
            TaskResult::Clean | TaskResult::Skipped => {}
        }
    }
    let outcome = if saw_budget {
        SearchOutcome::Budget
    } else if saw_unknown {
        SearchOutcome::SolverUnknown
    } else {
        SearchOutcome::Clean
    };
    (outcome, stats, core_stats, prefilter_stats)
}

/// Re-runs the winning violation task on a *fresh* clone of the master
/// pool. The reported *bytes* are already scheduling-independent —
/// `QuerySolver::confirm_model` extracts the canonical minimal model,
/// a pure function of the path constraint's semantics — but the
/// re-run keeps the rest of the counterexample (trace, description,
/// feasibility bookkeeping) a function of the master pool and task
/// index alone, independent of whichever diverged worker pool
/// happened to find the violation first.
///
/// The re-run uses a fresh (non-incremental) solver, whatever
/// `VerifyConfig::incremental` says: its answers depend on nothing a
/// worker accumulated, so the replayed task decides exactly as a
/// single-threaded run would.
fn reextract(
    i: usize,
    fallback: CounterExample,
    master: &TermPool,
    tasks: &[Task],
    ctx: &WorkerCtx,
) -> CounterExample {
    let mut pool = master.clone();
    let mut solver = QuerySolver::Fresh(BvSolver::with_conflict_budget(
        ctx.cfg.solver_conflict_budget,
    ));
    // Pruning is off for the re-run: it can only skip UNSAT queries,
    // but disabling it keeps the replay maximally independent of what
    // other workers learned.
    let mut pruner = Pruner::new(Arc::new(Mutex::new(CoreStore::new())), false, usize::MAX);
    // Same deterministic corpus as the workers'; its counters are
    // replay bookkeeping and are not merged into the report. The
    // reported bytes come from canonical minimal-model extraction
    // inside `confirm_model`, never from a corpus packet directly.
    let mut prefilter = Prefilter::new(ctx.cfg.concrete_prefilter, &ctx.sums.input, &ctx.cfg.sym);
    let composed = AtomicUsize::new(0);
    let ctx2 = WorkerCtx {
        composed: &composed,
        ..*ctx
    };
    match run_task(
        &tasks[i],
        &mut pool,
        &mut solver,
        &mut pruner,
        &mut prefilter,
        &ctx2,
    ) {
        TaskResult::Violation(cex) => cex,
        // Only reachable if the shared budget truncated the original
        // run differently; the in-flight counterexample is still valid.
        _ => fallback,
    }
}

/// A session pinned to `par`'s thread and split-depth knobs.
fn session<'p>(pipeline: &'p Pipeline, cfg: &VerifyConfig, par: &ParallelConfig) -> Verifier<'p> {
    Verifier::new(pipeline)
        .config(cfg.clone())
        .threads(par.threads)
        .split_depth(par.split_depth)
}

/// Parallel [`crate::verify_crash_freedom`]: same verdict, all cores.
#[deprecated(
    since = "0.2.0",
    note = "use `Verifier::new(p).threads(n).check(Property::CrashFreedom)` — \
            one session drives both engines and reuses step-1 summaries \
            (see the README migration table)"
)]
pub fn verify_crash_freedom_par(
    pipeline: &Pipeline,
    cfg: &VerifyConfig,
    par: &ParallelConfig,
) -> VerifyReport {
    session(pipeline, cfg, par)
        .check(Property::CrashFreedom)
        .expect_verify()
}

/// Parallel [`crate::verify_bounded_execution`]: same verdict, all cores.
#[deprecated(
    since = "0.2.0",
    note = "use `Verifier::new(p).threads(n).check(Property::Bounded { imax })` — \
            one session drives both engines and reuses step-1 summaries \
            (see the README migration table)"
)]
pub fn verify_bounded_execution_par(
    pipeline: &Pipeline,
    imax: u64,
    cfg: &VerifyConfig,
    par: &ParallelConfig,
) -> VerifyReport {
    session(pipeline, cfg, par)
        .check(Property::Bounded { imax })
        .expect_verify()
}

/// Parallel [`crate::verify_filtering`]: same verdict, all cores.
#[deprecated(
    since = "0.2.0",
    note = "use `Verifier::new(p).threads(n).check(Property::Filter(prop))` — \
            one session drives both engines and reuses step-1 summaries \
            (see the README migration table)"
)]
pub fn verify_filtering_par(
    pipeline: &Pipeline,
    prop: &FilterProperty,
    cfg: &VerifyConfig,
    par: &ParallelConfig,
) -> VerifyReport {
    session(pipeline, cfg, par)
        .check(Property::Filter(prop.clone()))
        .expect_verify()
}
