//! Fleet verification: N pipeline variants × M properties on one
//! shared summary store.
//!
//! Real deployments rarely verify one pipeline: they audit hundreds of
//! *variants* — the same handful of elements (CheckIPHeader, DecTTL,
//! NAT, IPLookup, …) wired into different pipelines or loaded with
//! different table configurations. A [`Fleet`] makes that the unit of
//! work: register variants and properties, call [`Fleet::run`], and
//! every `(pipeline, property)` pair is verified as an independent
//! task scheduled across worker threads, all consulting one
//! content-addressed [`SummaryStore`] — so step 1 runs once per
//! *distinct element*, not once per variant (and, for
//! [`MapMode::Abstract`](crate::MapMode) properties, not even once per
//! table configuration, since abstract keys ignore table contents).
//!
//! ```no_run
//! use verifier::fleet::Fleet;
//! use verifier::Property;
//! # fn variant(i: usize) -> dataplane::Pipeline { dataplane::Pipeline::new("p") }
//! let mut fleet = Fleet::new().threads(0);
//! for i in 0..8 {
//!     fleet = fleet.variant(format!("cfg-{i}"), variant(i));
//! }
//! let report = fleet
//!     .properties(&[Property::CrashFreedom, Property::Bounded { imax: 10_000 }])
//!     .run();
//! println!("{report}");
//! assert!(report.summary_hits > 0, "variants share step-1 work");
//! ```
//!
//! ## Scheduling granularity
//!
//! Tasks are deliberately per-`(variant, property)`, not per-variant:
//! with more tasks than workers the queue load-balances uneven
//! variants (one slow disproof does not serialize its variant's other
//! checks behind it). The cost is that the per-*session*
//! cross-property reuse ([`VerifyConfig::incremental`] blast caches,
//! UNSAT-core stores) resets per task — step-1 reuse is unaffected
//! (that is the store's job). When per-variant solver reuse matters
//! more than intra-variant parallelism — few properties, many slow
//! refutation proofs — run one [`Verifier::check_all`] session per
//! variant over a shared store instead; verdicts are identical either
//! way.
//!
//! ## Determinism
//!
//! Every task runs a fresh single-threaded [`Verifier`] session over
//! its own pipeline: no solver state, core store or term pool is
//! shared between tasks, so per-variant verdicts, counterexample
//! bytes and composed-path counts are **identical** whatever the fleet
//! thread count and task interleaving. The summary store is the only
//! shared state, and it only changes *who executes* a stage summary,
//! never its content (the executor is deterministic and hits are
//! rebased through [`bvsolve::Migrator`] exactly like misses) — so
//! results are also identical with the store shared, private, or
//! disabled ([`Fleet::share_store`] `= false`, the ablation baseline).
//! Only the cache counters and wall-clock times vary.

use crate::report::Verdict;
use crate::session::{Property, Report, Verifier};
use crate::step2::VerifyConfig;
use crate::summary::{effective_threads, run_indexed, SummaryStore};
use dataplane::Pipeline;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A fleet of pipeline variants to verify against a common property
/// set, sharing one step-1 [`SummaryStore`]. See the [module
/// docs](self).
pub struct Fleet {
    variants: Vec<(String, Pipeline)>,
    properties: Vec<Property>,
    cfg: VerifyConfig,
    threads: usize,
    store: Arc<SummaryStore>,
    share_store: bool,
}

impl Default for Fleet {
    fn default() -> Self {
        Self::new()
    }
}

impl Fleet {
    /// An empty fleet with the default configuration, all cores.
    pub fn new() -> Self {
        Fleet {
            variants: Vec::new(),
            properties: Vec::new(),
            cfg: VerifyConfig::default(),
            threads: 0,
            store: SummaryStore::shared(),
            share_store: true,
        }
    }

    /// Sets the verification configuration used by every task.
    #[must_use]
    pub fn config(mut self, cfg: VerifyConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the worker count for `(pipeline, property)` task
    /// scheduling: `0` (the default) uses all available cores, `1`
    /// runs tasks in place. Each task itself runs the sequential
    /// engine — fleet-level parallelism replaces step-2 splitting.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Uses `store` instead of a fresh one — e.g. a store kept warm
    /// across fleet runs, or shared with individual [`Verifier`]
    /// sessions.
    #[must_use]
    pub fn store(mut self, store: Arc<SummaryStore>) -> Self {
        self.store = store;
        self
    }

    /// Backs the fleet's shared store with the on-disk directory `dir`
    /// (created if absent; see [`SummaryStore::persistent`]): step-1
    /// warmth then survives the process and is shared across
    /// concurrent fleets pointed at the same directory. Replaces any
    /// store set earlier; call before [`Fleet::run`].
    pub fn with_store_path(mut self, dir: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        self.store = Arc::new(SummaryStore::persistent(dir)?);
        Ok(self)
    }

    /// Whether tasks share the fleet's summary store (the default).
    /// `false` gives every task a throwaway store — the "cold, no
    /// sharing" A/B baseline used by the `fleet_ablation` bench;
    /// verdicts are identical either way.
    #[must_use]
    pub fn share_store(mut self, share: bool) -> Self {
        self.share_store = share;
        self
    }

    /// Adds a pipeline variant under a display name.
    #[must_use]
    pub fn variant(mut self, name: impl Into<String>, pipeline: Pipeline) -> Self {
        self.variants.push((name.into(), pipeline));
        self
    }

    /// Sets the properties every variant is checked against.
    #[must_use]
    pub fn properties(mut self, properties: &[Property]) -> Self {
        self.properties = properties.to_vec();
        self
    }

    /// The shared store the fleet consults.
    pub fn summary_store(&self) -> &Arc<SummaryStore> {
        &self.store
    }

    /// Verifies every variant against every property and aggregates
    /// the reports. Tasks are `(variant, property)` pairs, claimed
    /// from a shared queue by `threads` workers; results are merged in
    /// (variant, property) order regardless of completion order.
    pub fn run(&self) -> FleetReport {
        let t0 = Instant::now();
        let hits0 = self.store.hits();
        let misses0 = self.store.misses();
        let loads0 = self.store.store_loads();
        let writes0 = self.store.store_writes();
        let lbytes0 = self.store.load_bytes();
        let n_tasks = self.variants.len() * self.properties.len();
        let threads = effective_threads(self.threads).clamp(1, n_tasks.max(1));

        let reports = run_indexed(n_tasks, threads, |i| {
            let (v, p) = (i / self.properties.len(), i % self.properties.len());
            let (_, pipeline) = &self.variants[v];
            let mut session = Verifier::new(pipeline).config(self.cfg.clone()).threads(1);
            if self.share_store {
                session = session.with_store(Arc::clone(&self.store));
            }
            session.check(self.properties[p].clone())
        });

        let mut variants = Vec::with_capacity(self.variants.len());
        let mut it = reports.into_iter();
        for (name, _) in &self.variants {
            let vreports: Vec<Report> = (0..self.properties.len())
                .map(|_| it.next().expect("fleet task completed"))
                .collect();
            variants.push(VariantReport {
                variant: name.clone(),
                reports: vreports,
            });
        }
        FleetReport {
            variants,
            summary_hits: self.store.hits() - hits0,
            summary_misses: self.store.misses() - misses0,
            store_size: self.store.len(),
            store_loads: self.store.store_loads() - loads0,
            store_writes: self.store.store_writes() - writes0,
            load_bytes: self.store.load_bytes() - lbytes0,
            evictions: self.store.evictions(),
            time: t0.elapsed(),
        }
    }
}

/// One variant's reports, in fleet property order.
#[derive(Debug)]
pub struct VariantReport {
    /// The variant's display name.
    pub variant: String,
    /// One report per fleet property, in order.
    pub reports: Vec<Report>,
}

impl VariantReport {
    /// Whether every search-based property was proved (non-search
    /// reports are ignored).
    pub fn all_proved(&self) -> bool {
        self.reports
            .iter()
            .filter_map(|r| r.verdict())
            .all(Verdict::is_proved)
    }
}

/// Aggregate result of one [`Fleet::run`].
#[derive(Debug)]
pub struct FleetReport {
    /// Per-variant reports, in registration order.
    pub variants: Vec<VariantReport>,
    /// Stage summaries served from the **fleet's shared store**
    /// during this run. Zero when sharing is disabled
    /// ([`Fleet::share_store`] `= false`); `> 0` on any fleet whose
    /// variants overlap in elements (or on a warm store).
    pub summary_hits: u64,
    /// Stage summaries executed into (and cached by) the **fleet's
    /// shared store** during this run. Like
    /// [`summary_hits`](FleetReport::summary_hits) this counts
    /// shared-store traffic only: with sharing disabled, tasks
    /// execute into private
    /// per-session stores and both counters read zero — the per-check
    /// execution counts are still on each report's
    /// [`VerifyReport::summary`](crate::VerifyReport) stats.
    pub summary_misses: u64,
    /// Store size after the run.
    pub store_size: usize,
    /// Summaries loaded from the store's backing directory during this
    /// run (zero for in-memory stores; each load also counts as a
    /// [`summary_hits`](FleetReport::summary_hits) entry — disk loads
    /// skip execution).
    pub store_loads: u64,
    /// Summaries written back to the backing directory during this
    /// run.
    pub store_writes: u64,
    /// Bytes read from disk by `store_loads`.
    pub load_bytes: u64,
    /// In-memory LRU evictions over the store's lifetime (not a
    /// per-run delta; always zero for unbounded stores).
    pub evictions: u64,
    /// Wall-clock time of the whole run.
    pub time: Duration,
}

impl FleetReport {
    /// Whether every variant proved every search-based property.
    pub fn all_proved(&self) -> bool {
        self.variants.iter().all(VariantReport::all_proved)
    }

    /// Count of `(variant, property)` pairs that were disproved.
    pub fn disproved(&self) -> usize {
        self.variants
            .iter()
            .flat_map(|v| &v.reports)
            .filter_map(|r| r.verdict())
            .filter(|v| v.is_disproved())
            .count()
    }

    /// Summed step-1 wall-clock across all reports (the quantity the
    /// summary store amortizes; rebases from cache count, execution
    /// avoided does not).
    pub fn step1_time(&self) -> Duration {
        self.variants
            .iter()
            .flat_map(|v| &v.reports)
            .filter_map(|r| r.as_verify())
            .map(|r| r.step1_time)
            .sum()
    }

    /// Summed step-2 wall-clock across all reports.
    pub fn step2_time(&self) -> Duration {
        self.variants
            .iter()
            .flat_map(|v| &v.reports)
            .filter_map(|r| r.as_verify())
            .map(|r| r.step2_time)
            .sum()
    }

    /// A single-line JSON rendering: per-variant verdict strings plus
    /// the aggregate cache counters and timings.
    pub fn to_json(&self) -> String {
        let variants = self
            .variants
            .iter()
            .map(|v| {
                let verdicts = v
                    .reports
                    .iter()
                    .map(|r| {
                        format!(
                            "{{\"property\":\"{}\",\"verdict\":\"{}\"}}",
                            crate::report::json_escape(&r.property()),
                            r.verdict().map_or("n/a", Verdict::label)
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "{{\"variant\":\"{}\",\"checks\":[{verdicts}]}}",
                    crate::report::json_escape(&v.variant)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"kind\":\"fleet\",\"variants\":[{variants}],\
             \"summary_hits\":{},\"summary_misses\":{},\"store_size\":{},\
             \"store_loads\":{},\"store_writes\":{},\"load_bytes\":{},\
             \"evictions\":{},\
             \"step1_ms\":{:.3},\"step2_ms\":{:.3},\"time_ms\":{:.3}}}",
            self.summary_hits,
            self.summary_misses,
            self.store_size,
            self.store_loads,
            self.store_writes,
            self.load_bytes,
            self.evictions,
            self.step1_time().as_secs_f64() * 1e3,
            self.step2_time().as_secs_f64() * 1e3,
            self.time.as_secs_f64() * 1e3,
        )
    }
}

impl std::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fleet: {} variants x {} checks | step1 {:?} (cache: {} hits / {} misses, {} stored) | step2 {:?} | wall {:?}",
            self.variants.len(),
            self.variants.first().map_or(0, |v| v.reports.len()),
            self.step1_time(),
            self.summary_hits,
            self.summary_misses,
            self.store_size,
            self.step2_time(),
            self.time,
        )?;
        for v in &self.variants {
            write!(f, "  {}:", v.variant)?;
            for r in &v.reports {
                let verdict = match r.verdict() {
                    Some(Verdict::Proved) => "proved".to_string(),
                    Some(Verdict::Disproved(c)) => format!("DISPROVED ({})", c.description),
                    Some(Verdict::Unknown(u)) => format!("unknown ({u})"),
                    None => "n/a".to_string(),
                };
                write!(f, " [{} {verdict}]", r.property())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}
