//! The **generic baseline**: whole-pipeline monolithic symbolic
//! execution, modeling what a general-purpose engine (vanilla S2E) does
//! with the same code (§5.2's "generic verification").
//!
//! No decomposition: element k executes directly on element k-1's
//! terminal states, so path counts multiply (`2^(m·n)`); data-structure
//! internals are executed (modeled by [`ForkingMapModel`]: one fork per
//! table entry / per hash slot); loops unroll iteration by iteration.
//! The state budget plays the role of the paper's 12-hour wall.

use bvsolve::{TermId, TermPool};
use dataplane::{ElementKind, Pipeline, Route};
use dpir::PORT_CONTINUE;
use symexec::{execute, ForkingMapModel, SegOutcome, SymConfig, SymError, SymInput};

/// Why a generic run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenericOutcome {
    /// Explored everything within budget.
    Completed,
    /// State budget exceeded — reported like the paper's "12h+" bars.
    Exceeded,
}

/// Result of a generic (baseline) verification run.
#[derive(Debug)]
pub struct GenericReport {
    /// Total symbolic states materialized (Fig. 4(c) annotation).
    pub states: usize,
    /// Complete pipeline paths reached.
    pub paths: usize,
    /// Crash-suspect paths found (the baseline finds the same bugs —
    /// when it finishes).
    pub crashes: usize,
    /// Paths that exhausted fuel or loop bounds.
    pub unbounded: usize,
    /// How the run ended.
    pub outcome: GenericOutcome,
}

struct GenState {
    stage: usize,
    iter: u32,
    pkt: Vec<TermId>,
    len: TermId,
    meta: Vec<TermId>,
    constraint: Vec<TermId>,
}

/// Runs the baseline on `pipeline`. `loop_cap` bounds loop unrolling
/// per element; `cfg.max_states` is the global budget.
#[deprecated(
    since = "0.2.0",
    note = "use `Verifier::new(p).check(Property::Generic { loop_cap })` \
            (see the README migration table)"
)]
pub fn generic_verify(pipeline: &Pipeline, cfg: &SymConfig, loop_cap: u32) -> GenericReport {
    run_generic(pipeline, cfg, loop_cap)
}

/// The baseline engine behind [`generic_verify`] and
/// [`crate::session::Property::Generic`].
pub(crate) fn run_generic(pipeline: &Pipeline, cfg: &SymConfig, loop_cap: u32) -> GenericReport {
    let mut pool = TermPool::new();
    let input = SymInput::fresh(&mut pool, cfg, "in");
    let zero = pool.mk_const(dpir::META_WIDTH, 0);
    let mut report = GenericReport {
        states: 0,
        paths: 0,
        crashes: 0,
        unbounded: 0,
        outcome: GenericOutcome::Completed,
    };

    // Per-stage forking models, configured with the real table contents.
    let mut models: Vec<ForkingMapModel> = pipeline
        .stages
        .iter()
        .map(|s| {
            let elem = &s.element;
            let max_private = elem
                .program()
                .maps
                .iter()
                .filter(|d| !d.is_static)
                .map(|d| d.capacity)
                .max()
                .unwrap_or(0);
            let mut m = ForkingMapModel::new(max_private);
            for (map, cfg_t) in &elem.tables {
                m.set_table(*map, cfg_t.as_pairs().to_vec());
            }
            m
        })
        .collect();

    let mut stack = vec![GenState {
        stage: 0,
        iter: 0,
        pkt: input.pkt_bytes.clone(),
        len: input.pkt_len,
        meta: vec![zero; dpir::META_SLOTS],
        constraint: input.base_constraints.clone(),
    }];

    while let Some(st) = stack.pop() {
        if report.states >= cfg.max_states {
            report.outcome = GenericOutcome::Exceeded;
            return report;
        }
        let stage = &pipeline.stages[st.stage];
        let elem = &stage.element;
        let prog = elem.program();
        let is_loop = matches!(elem.kind, ElementKind::Loop { .. });
        let sym_in = SymInput::from_terms(
            st.pkt.clone(),
            st.len,
            st.meta.clone(),
            st.constraint.clone(),
        );
        let mut sub_cfg = cfg.clone();
        sub_cfg.max_states = cfg.max_states.saturating_sub(report.states).max(1);
        // Generic engines concretize symbolic packet offsets by forking.
        sub_cfg.fork_on_symbolic_offset = true;
        let rep = match execute(&mut pool, prog, &sym_in, &mut models[st.stage], &sub_cfg) {
            Ok(r) => r,
            Err(SymError::StateBudget { explored }) => {
                report.states += explored;
                report.outcome = GenericOutcome::Exceeded;
                return report;
            }
            Err(_) => {
                report.outcome = GenericOutcome::Exceeded;
                return report;
            }
        };
        report.states += rep.states;
        for seg in rep.segments {
            match seg.outcome {
                SegOutcome::Crash(_) => {
                    report.crashes += 1;
                    report.paths += 1;
                }
                SegOutcome::Drop => report.paths += 1,
                SegOutcome::FuelExhausted => {
                    report.unbounded += 1;
                    report.paths += 1;
                }
                SegOutcome::Emit(p) if is_loop && p == PORT_CONTINUE => {
                    if st.iter + 1 >= loop_cap {
                        report.unbounded += 1;
                        report.paths += 1;
                    } else {
                        stack.push(GenState {
                            stage: st.stage,
                            iter: st.iter + 1,
                            pkt: seg.pkt_out,
                            len: seg.len_out,
                            meta: seg.meta_out,
                            constraint: seg.constraint,
                        });
                    }
                }
                SegOutcome::Emit(p) => match pipeline.stages[st.stage].resolve(p) {
                    Route::Next | Route::To(_) => {
                        let target = match pipeline.stages[st.stage].resolve(p) {
                            Route::Next => st.stage + 1,
                            Route::To(s) => s,
                            _ => unreachable!(),
                        };
                        if target < pipeline.stages.len() {
                            stack.push(GenState {
                                stage: target,
                                iter: 0,
                                pkt: seg.pkt_out,
                                len: seg.len_out,
                                meta: seg.meta_out,
                                constraint: seg.constraint,
                            });
                        } else {
                            report.paths += 1;
                        }
                    }
                    Route::Sink(_) | Route::Drop => report.paths += 1,
                },
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use elements::micro::{field_filter, FilterField};
    use elements::pipelines::to_pipeline;

    fn cfg(max_states: usize) -> SymConfig {
        SymConfig {
            max_pkt_bytes: 48,
            max_states,
            ..Default::default()
        }
    }

    #[test]
    fn filter_chain_path_count_multiplies() {
        // 2 filters vs 4 filters: generic path counts grow
        // multiplicatively (Fig. 4(c)).
        let two = to_pipeline(
            "f2",
            vec![
                field_filter(FilterField::IpDst, 1),
                field_filter(FilterField::IpSrc, 2),
            ],
        );
        let four = to_pipeline(
            "f4",
            vec![
                field_filter(FilterField::IpDst, 1),
                field_filter(FilterField::IpSrc, 2),
                field_filter(FilterField::PortDst, 3),
                field_filter(FilterField::PortSrc, 4),
            ],
        );
        let r2 = run_generic(&two, &cfg(1 << 20), 4);
        let r4 = run_generic(&four, &cfg(1 << 20), 4);
        assert_eq!(r2.outcome, GenericOutcome::Completed);
        assert_eq!(r4.outcome, GenericOutcome::Completed);
        assert!(
            r4.states > 2 * r2.states,
            "whole-pipeline states must grow multiplicatively: {} vs {}",
            r2.states,
            r4.states
        );
        assert_eq!(r2.crashes, 0);
        assert_eq!(r4.crashes, 0);
    }

    #[test]
    fn budget_exceeded_reported() {
        let four = to_pipeline(
            "f4",
            vec![
                field_filter(FilterField::IpDst, 1),
                field_filter(FilterField::IpSrc, 2),
                field_filter(FilterField::PortDst, 3),
                field_filter(FilterField::PortSrc, 4),
            ],
        );
        let r = run_generic(&four, &cfg(10), 4);
        assert_eq!(r.outcome, GenericOutcome::Exceeded);
    }
}
