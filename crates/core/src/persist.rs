//! Versioned binary codec behind the persistent store: step-1 stage
//! summaries and step-2 solver cores, one content-addressed file each.
//!
//! ## Format
//!
//! Every file is `magic "DPVS" · version · kind · key echo ·
//! payload-length · FNV-1a-64 checksum · payload`, all little-endian.
//! The key echo repeats the content address the *filename* claims
//! (the [`SummaryKey`] fingerprints for summaries; `(mode, epoch)` for
//! cores), so a renamed or hash-colliding file cannot impersonate
//! another entry. The payload serializes the reachable term-DAG of the
//! entry: the var table in creation order, then one record per term in
//! pool index order (children always precede parents — the pool is an
//! append-only arena), then the entry body referencing terms by dense
//! index.
//!
//! ## Why decode cannot produce wrong answers
//!
//! Every failure mode degrades to a cache **miss**, never a wrong
//! summary:
//!
//! * truncation, bit flips and stale versions are caught by the
//!   header checks and the payload checksum;
//! * even a checksum-colliding payload is then structurally validated
//!   record by record (widths in `1..=64`, child indices strictly
//!   below the record, ITE conditions width 1, extension/extract/
//!   concat bounds, var records in creation order) before any pool
//!   constructor runs;
//! * a summary that decodes is replayed through the same
//!   [`TermPool`] constructors that built it, which reproduces the
//!   saved compacted pool **byte for byte**: every stored term was
//!   interned by the constructor for its own operator (top-level
//!   imports and simplification byproducts alike), constructor
//!   decisions depend only on the operand terms — identical by
//!   induction over the record order — and a record exists at all
//!   only because its constructor interned rather than simplified it.
//!   A loaded entry is therefore indistinguishable from the entry
//!   that was written, and sessions rebase from it through
//!   [`import_summary`] exactly as from an in-memory hit — so disk
//!   hits, memory hits and fresh executions all build byte-identical
//!   session pools.
//!
//! Core files are sound under an even weaker contract: a core is a set
//! of terms whose conjunction is UNSAT, and UNSAT survives injective
//! variable renaming, so *any* well-formed core file may be imported
//! into *any* session — at worst a useless core wastes a subsumption
//! probe. Import is **find-only** ([`TermPool::lookup`]): cores whose
//! terms the live session has not (yet) interned stay pending and are
//! retried as the session's deterministic trajectory catches up,
//! keeping the session pool's append-only construction order — which
//! the byte-identity story above depends on — undisturbed.

use crate::cores::CoreStore;
use crate::summary::{MapMode, StoredStage, SummaryKey};
use bvsolve::{BinOp, Migrator, Term, TermId, TermPool, UnOp, Width};
use dpir::CrashReason;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use symexec::{MapOpKind, MapOpRecord, SegOutcome, Segment, SymInput};

const MAGIC: &[u8; 4] = b"DPVS";
/// Bumped on any change to the encoding; mismatched files are misses.
const VERSION: u32 = 1;
const KIND_SUMMARY: u8 = 0;
const KIND_CORES: u8 = 1;

/// Why a store file was rejected (logged, then treated as a miss).
#[derive(Debug)]
pub(crate) enum StoreFileError {
    /// The file does not match the expected header or payload shape.
    Corrupt(&'static str),
}

impl std::fmt::Display for StoreFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreFileError::Corrupt(what) => write!(f, "corrupt store file: {what}"),
        }
    }
}

type DecodeResult<T> = Result<T, StoreFileError>;

fn corrupt<T>(what: &'static str) -> DecodeResult<T> {
    Err(StoreFileError::Corrupt(what))
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

// ----------------------------------------------------------------------
// Byte-level writer / reader
// ----------------------------------------------------------------------

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn idx(&mut self, t: TermId) {
        self.u32(t.index() as u32);
    }
    fn idx_list(&mut self, ts: &[TermId]) {
        self.u32(ts.len() as u32);
        for &t in ts {
            self.idx(t);
        }
    }
    fn var_list(&mut self, vs: &[u32]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.u32(v);
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return corrupt("truncated");
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> DecodeResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> DecodeResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn str(&mut self) -> DecodeResult<String> {
        let n = self.u32()? as usize;
        match std::str::from_utf8(self.take(n)?) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => corrupt("non-utf8 string"),
        }
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ----------------------------------------------------------------------
// Term pool section
// ----------------------------------------------------------------------

fn unop_code(op: UnOp) -> u8 {
    match op {
        UnOp::Not => 0,
        UnOp::Neg => 1,
    }
}

fn unop_from(code: u8) -> DecodeResult<UnOp> {
    match code {
        0 => Ok(UnOp::Not),
        1 => Ok(UnOp::Neg),
        _ => corrupt("bad unary op"),
    }
}

fn binop_code(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::UDiv => 3,
        BinOp::URem => 4,
        BinOp::And => 5,
        BinOp::Or => 6,
        BinOp::Xor => 7,
        BinOp::Shl => 8,
        BinOp::Lshr => 9,
        BinOp::Eq => 10,
        BinOp::Ult => 11,
        BinOp::Ule => 12,
        BinOp::Slt => 13,
        BinOp::Sle => 14,
    }
}

fn binop_from(code: u8) -> DecodeResult<BinOp> {
    Ok(match code {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::UDiv,
        4 => BinOp::URem,
        5 => BinOp::And,
        6 => BinOp::Or,
        7 => BinOp::Xor,
        8 => BinOp::Shl,
        9 => BinOp::Lshr,
        10 => BinOp::Eq,
        11 => BinOp::Ult,
        12 => BinOp::Ule,
        13 => BinOp::Slt,
        14 => BinOp::Sle,
        _ => return corrupt("bad binary op"),
    })
}

/// Serializes `pool` whole: var table in creation order, then one
/// record per term in index order (already topological).
fn encode_pool(e: &mut Enc, pool: &TermPool) {
    e.u32(pool.num_vars() as u32);
    for id in 0..pool.num_vars() as u32 {
        e.str(pool.var_name(id));
        e.u32(pool.var_width(id));
    }
    e.u32(pool.len() as u32);
    for i in 0..pool.len() {
        match *pool.get(pool.term_id(i)) {
            Term::Const { width, value } => {
                e.u8(0);
                e.u32(width);
                e.u64(value);
            }
            Term::Var { id, .. } => {
                e.u8(1);
                e.u32(id);
            }
            Term::Unary(op, a) => {
                e.u8(2);
                e.u8(unop_code(op));
                e.idx(a);
            }
            Term::Binary(op, a, b) => {
                e.u8(3);
                e.u8(binop_code(op));
                e.idx(a);
                e.idx(b);
            }
            Term::Ite(c, a, b) => {
                e.u8(4);
                e.idx(c);
                e.idx(a);
                e.idx(b);
            }
            Term::ZExt(a, w) => {
                e.u8(5);
                e.idx(a);
                e.u32(w);
            }
            Term::SExt(a, w) => {
                e.u8(6);
                e.idx(a);
                e.u32(w);
            }
            Term::Extract { hi, lo, arg } => {
                e.u8(7);
                e.u32(hi);
                e.u32(lo);
                e.idx(arg);
            }
            Term::Concat(a, b) => {
                e.u8(8);
                e.idx(a);
                e.idx(b);
            }
        }
    }
}

/// Decoded pool plus the record-index → [`TermId`] map (identity for a
/// faithful file; the map exists so even a checksum-colliding record
/// stream that replays into a simplified term still yields *valid*
/// references rather than out-of-pool ids).
struct DecodedPool {
    pool: TermPool,
    map: Vec<TermId>,
    n_vars: usize,
}

impl DecodedPool {
    /// Resolves a record index read from the entry body.
    fn term(&self, d: &mut Dec<'_>) -> DecodeResult<TermId> {
        let i = d.u32()? as usize;
        match self.map.get(i) {
            Some(&t) => Ok(t),
            None => corrupt("term reference out of range"),
        }
    }

    fn term_list(&self, d: &mut Dec<'_>) -> DecodeResult<Vec<TermId>> {
        let n = d.u32()? as usize;
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(self.term(d)?);
        }
        Ok(out)
    }

    fn var(&self, d: &mut Dec<'_>) -> DecodeResult<u32> {
        let v = d.u32()?;
        if (v as usize) < self.n_vars {
            Ok(v)
        } else {
            corrupt("var reference out of range")
        }
    }

    fn var_list(&self, d: &mut Dec<'_>) -> DecodeResult<Vec<u32>> {
        let n = d.u32()? as usize;
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(self.var(d)?);
        }
        Ok(out)
    }
}

/// Replays a pool section into a fresh pool, validating every record
/// **before** calling the constructor (the constructors `debug_assert`
/// their preconditions, so a malformed record must never reach one).
fn decode_pool(d: &mut Dec<'_>) -> DecodeResult<DecodedPool> {
    let n_vars = d.u32()? as usize;
    let mut vars: Vec<(String, Width)> = Vec::new();
    for _ in 0..n_vars {
        let name = d.str()?;
        let w = d.u32()?;
        if !(1..=bvsolve::MAX_WIDTH).contains(&w) {
            return corrupt("bad var width");
        }
        vars.push((name, w));
    }
    let n_terms = d.u32()? as usize;
    let mut pool = TermPool::new();
    let mut map: Vec<TermId> = Vec::new();
    // Structural width per *record* (== pool width of the mapped term:
    // simplification never changes a term's width).
    let mut widths: Vec<Width> = Vec::new();
    let mut vars_made = 0usize;
    for i in 0..n_terms {
        let child = |d: &mut Dec<'_>| -> DecodeResult<usize> {
            let c = d.u32()? as usize;
            if c >= i {
                return corrupt("child index not below record");
            }
            Ok(c)
        };
        let (t, w) = match d.u8()? {
            0 => {
                let w = d.u32()?;
                let value = d.u64()?;
                if !(1..=bvsolve::MAX_WIDTH).contains(&w) {
                    return corrupt("bad const width");
                }
                (pool.mk_const(w, value), w)
            }
            1 => {
                let id = d.u32()? as usize;
                // Var terms must appear in creation order, one per var
                // table entry — that is the only trajectory
                // `fresh_var` can replay.
                if id != vars_made || id >= n_vars {
                    return corrupt("var record out of order");
                }
                let (name, w) = &vars[id];
                vars_made += 1;
                (pool.fresh_var(name, *w), *w)
            }
            2 => {
                let op = unop_from(d.u8()?)?;
                let a = child(d)?;
                (pool.mk_unary(op, map[a]), widths[a])
            }
            3 => {
                let op = binop_from(d.u8()?)?;
                let a = child(d)?;
                let b = child(d)?;
                if widths[a] != widths[b] {
                    return corrupt("binary width mismatch");
                }
                let w = if op.is_comparison() { 1 } else { widths[a] };
                (pool.mk_binary(op, map[a], map[b]), w)
            }
            4 => {
                let c = child(d)?;
                let a = child(d)?;
                let b = child(d)?;
                if widths[c] != 1 || widths[a] != widths[b] {
                    return corrupt("ite width mismatch");
                }
                (pool.mk_ite(map[c], map[a], map[b]), widths[a])
            }
            5 | 6 => {
                let tag = d.buf[d.pos - 1];
                let a = child(d)?;
                let w = d.u32()?;
                if w < widths[a] || w > bvsolve::MAX_WIDTH {
                    return corrupt("bad extension width");
                }
                let t = if tag == 5 {
                    pool.mk_zext(map[a], w)
                } else {
                    pool.mk_sext(map[a], w)
                };
                (t, w)
            }
            7 => {
                let hi = d.u32()?;
                let lo = d.u32()?;
                let a = child(d)?;
                if lo > hi || hi >= widths[a] {
                    return corrupt("bad extract bounds");
                }
                (pool.mk_extract(map[a], hi, lo), hi - lo + 1)
            }
            8 => {
                let a = child(d)?;
                let b = child(d)?;
                if widths[a] + widths[b] > bvsolve::MAX_WIDTH {
                    return corrupt("concat too wide");
                }
                (pool.mk_concat(map[a], map[b]), widths[a] + widths[b])
            }
            _ => return corrupt("bad term tag"),
        };
        map.push(t);
        widths.push(w);
    }
    if vars_made != n_vars {
        return corrupt("unused var table entries");
    }
    Ok(DecodedPool { pool, map, n_vars })
}

// ----------------------------------------------------------------------
// Summary entry body
// ----------------------------------------------------------------------

fn encode_input(e: &mut Enc, input: &SymInput) {
    e.idx_list(&input.pkt_bytes);
    e.idx(input.pkt_len);
    e.idx_list(&input.meta);
    e.var_list(&input.pkt_byte_vars);
    e.u32(input.len_var);
    e.var_list(&input.meta_vars);
    e.idx_list(&input.base_constraints);
}

fn decode_input(d: &mut Dec<'_>, p: &DecodedPool) -> DecodeResult<SymInput> {
    Ok(SymInput {
        pkt_bytes: p.term_list(d)?,
        pkt_len: p.term(d)?,
        meta: p.term_list(d)?,
        pkt_byte_vars: p.var_list(d)?,
        len_var: p.var(d)?,
        meta_vars: p.var_list(d)?,
        base_constraints: p.term_list(d)?,
    })
}

fn encode_outcome(e: &mut Enc, outcome: SegOutcome) {
    match outcome {
        SegOutcome::Emit(port) => {
            e.u8(0);
            e.u8(port);
        }
        SegOutcome::Drop => e.u8(1),
        SegOutcome::Crash(reason) => {
            e.u8(2);
            match reason {
                CrashReason::AssertFailed(i) => {
                    e.u8(0);
                    e.u32(i);
                }
                CrashReason::OobRead => e.u8(1),
                CrashReason::OobWrite => e.u8(2),
                CrashReason::DivByZero => e.u8(3),
                CrashReason::Explicit(i) => {
                    e.u8(4);
                    e.u32(i);
                }
            }
        }
        SegOutcome::FuelExhausted => e.u8(3),
    }
}

fn decode_outcome(d: &mut Dec<'_>) -> DecodeResult<SegOutcome> {
    Ok(match d.u8()? {
        0 => SegOutcome::Emit(d.u8()?),
        1 => SegOutcome::Drop,
        2 => SegOutcome::Crash(match d.u8()? {
            0 => CrashReason::AssertFailed(d.u32()?),
            1 => CrashReason::OobRead,
            2 => CrashReason::OobWrite,
            3 => CrashReason::DivByZero,
            4 => CrashReason::Explicit(d.u32()?),
            _ => return corrupt("bad crash reason"),
        }),
        3 => SegOutcome::FuelExhausted,
        _ => return corrupt("bad segment outcome"),
    })
}

fn encode_opt_var(e: &mut Enc, v: Option<u32>) {
    match v {
        Some(v) => {
            e.u8(1);
            e.u32(v);
        }
        None => e.u8(0),
    }
}

fn decode_opt_var(d: &mut Dec<'_>, p: &DecodedPool) -> DecodeResult<Option<u32>> {
    Ok(match d.u8()? {
        0 => None,
        1 => Some(p.var(d)?),
        _ => return corrupt("bad option flag"),
    })
}

fn encode_segment(e: &mut Enc, seg: &Segment) {
    e.idx_list(&seg.constraint);
    e.idx_list(&seg.assumed);
    encode_outcome(e, seg.outcome);
    e.idx_list(&seg.pkt_out);
    e.idx(seg.len_out);
    e.idx_list(&seg.meta_out);
    e.u64(seg.instrs);
    e.u32(seg.map_ops.len() as u32);
    for op in &seg.map_ops {
        e.u32(op.map.0);
        e.u8(match op.kind {
            MapOpKind::Read => 0,
            MapOpKind::Write => 1,
            MapOpKind::Test => 2,
            MapOpKind::Expire => 3,
        });
        e.idx(op.key);
        match op.value {
            Some(v) => {
                e.u8(1);
                e.idx(v);
            }
            None => e.u8(0),
        }
        encode_opt_var(e, op.havoc_value_var);
        encode_opt_var(e, op.havoc_flag_var);
    }
}

fn decode_segment(d: &mut Dec<'_>, p: &DecodedPool) -> DecodeResult<Segment> {
    let constraint = p.term_list(d)?;
    let assumed = p.term_list(d)?;
    let outcome = decode_outcome(d)?;
    let pkt_out = p.term_list(d)?;
    let len_out = p.term(d)?;
    let meta_out = p.term_list(d)?;
    let instrs = d.u64()?;
    let n_ops = d.u32()? as usize;
    let mut map_ops = Vec::new();
    for _ in 0..n_ops {
        let map = dpir::MapId(d.u32()?);
        let kind = match d.u8()? {
            0 => MapOpKind::Read,
            1 => MapOpKind::Write,
            2 => MapOpKind::Test,
            3 => MapOpKind::Expire,
            _ => return corrupt("bad map op kind"),
        };
        let key = p.term(d)?;
        let value = match d.u8()? {
            0 => None,
            1 => Some(p.term(d)?),
            _ => return corrupt("bad option flag"),
        };
        map_ops.push(MapOpRecord {
            map,
            kind,
            key,
            value,
            havoc_value_var: decode_opt_var(d, p)?,
            havoc_flag_var: decode_opt_var(d, p)?,
        });
    }
    Ok(Segment {
        constraint,
        assumed,
        outcome,
        pkt_out,
        len_out,
        meta_out,
        instrs,
        map_ops,
    })
}

// ----------------------------------------------------------------------
// File framing
// ----------------------------------------------------------------------

fn finish_file(kind: u8, key_echo: &[u8], payload: Vec<u8>) -> Vec<u8> {
    let mut f = Enc::default();
    f.buf.extend_from_slice(MAGIC);
    f.u32(VERSION);
    f.u8(kind);
    f.buf.extend_from_slice(key_echo);
    f.u64(payload.len() as u64);
    f.u64(fnv64(&payload));
    f.buf.extend_from_slice(&payload);
    f.buf
}

/// Checks the frame and returns a decoder over the verified payload.
fn open_file<'a>(bytes: &'a [u8], kind: u8, key_echo: &[u8]) -> DecodeResult<Dec<'a>> {
    let mut d = Dec::new(bytes);
    if d.take(4)? != MAGIC {
        return corrupt("bad magic");
    }
    if d.u32()? != VERSION {
        return corrupt("unsupported format version");
    }
    if d.u8()? != kind {
        return corrupt("wrong entry kind");
    }
    if d.take(key_echo.len())? != key_echo {
        return corrupt("key echo does not match the requested entry");
    }
    let payload_len = d.u64()? as usize;
    let checksum = d.u64()?;
    let payload = d.take(payload_len)?;
    if !d.done() {
        return corrupt("trailing bytes");
    }
    if fnv64(payload) != checksum {
        return corrupt("checksum mismatch");
    }
    Ok(Dec::new(payload))
}

fn mode_byte(mode: MapMode) -> u8 {
    match mode {
        MapMode::Abstract => 0,
        MapMode::Tables => 1,
    }
}

fn mode_char(mode: MapMode) -> char {
    match mode {
        MapMode::Abstract => 'a',
        MapMode::Tables => 't',
    }
}

fn summary_key_echo(key: &SummaryKey) -> Vec<u8> {
    let mut e = Enc::default();
    e.u128(key.program);
    e.u8(mode_byte(key.mode));
    e.u128(key.tables);
    e.u128(key.sym);
    e.buf
}

fn core_key_echo(mode: MapMode, epoch: u128) -> Vec<u8> {
    let mut e = Enc::default();
    e.u8(mode_byte(mode));
    e.u128(epoch);
    e.buf
}

pub(crate) fn summary_file_name(key: &SummaryKey) -> String {
    format!(
        "s-{:032x}-{}-{:032x}-{:032x}.dpvs",
        key.program,
        mode_char(key.mode),
        key.tables,
        key.sym
    )
}

pub(crate) fn core_file_name(mode: MapMode, epoch: u128) -> String {
    format!("c-{}-{:032x}.dpvc", mode_char(mode), epoch)
}

/// Atomic publish: write to a process-unique temp file in `dir`, then
/// rename over the final name. Readers only ever see complete files.
fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = dir.join(format!(".{}.tmp.{}", name, std::process::id()));
    std::fs::write(&tmp, bytes)?;
    match std::fs::rename(&tmp, dir.join(name)) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

// ----------------------------------------------------------------------
// Summary files
// ----------------------------------------------------------------------

pub(crate) fn encode_summary(key: &SummaryKey, stage: &StoredStage) -> Vec<u8> {
    let mut p = Enc::default();
    encode_pool(&mut p, &stage.pool);
    encode_input(&mut p, &stage.input);
    p.u32(stage.segments.len() as u32);
    for seg in &stage.segments {
        encode_segment(&mut p, seg);
    }
    p.u64(stage.states as u64);
    finish_file(KIND_SUMMARY, &summary_key_echo(key), p.buf)
}

pub(crate) fn decode_summary(bytes: &[u8], key: &SummaryKey) -> DecodeResult<StoredStage> {
    let mut d = open_file(bytes, KIND_SUMMARY, &summary_key_echo(key))?;
    let decoded = decode_pool(&mut d)?;
    let input = decode_input(&mut d, &decoded)?;
    let n_segs = d.u32()? as usize;
    let mut segments = Vec::new();
    for _ in 0..n_segs {
        segments.push(decode_segment(&mut d, &decoded)?);
    }
    let states = d.u64()? as usize;
    if !d.done() {
        return corrupt("trailing payload bytes");
    }
    // The replayed pool *is* the saved compacted pool, byte for byte
    // (each record replays through the constructor that interned it;
    // see the module docs), so this entry is indistinguishable from
    // the one that was written and sessions rebase from it through
    // [`import_summary`] exactly as from an in-memory hit. No
    // re-normalization happens here — `import_summary` is only
    // guaranteed stable *from* a compacted pool, not idempotent on
    // one (simplification byproducts would re-order).
    Ok(StoredStage {
        pool: decoded.pool,
        input,
        segments,
        states,
    })
}

/// Loads the summary for `key` from `dir`. Any failure other than the
/// file simply not existing is logged; every failure is a miss.
pub(crate) fn load_summary(dir: &Path, key: &SummaryKey) -> Option<(StoredStage, u64)> {
    let path = dir.join(summary_file_name(key));
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
        Err(e) => {
            eprintln!("dpv-store: cannot read {}: {e}", path.display());
            return None;
        }
    };
    match decode_summary(&bytes, key) {
        Ok(stage) => Some((stage, bytes.len() as u64)),
        Err(e) => {
            eprintln!("dpv-store: ignoring {}: {e}", path.display());
            None
        }
    }
}

/// Writes the summary for `key` into `dir`; returns whether it landed
/// (failures are logged and non-fatal — the store stays memory-only
/// for that entry).
pub(crate) fn save_summary(dir: &Path, key: &SummaryKey, stage: &StoredStage) -> bool {
    let bytes = encode_summary(key, stage);
    match write_atomic(dir, &summary_file_name(key), &bytes) {
        Ok(()) => true,
        Err(e) => {
            eprintln!(
                "dpv-store: cannot write {}: {e}",
                dir.join(summary_file_name(key)).display()
            );
            false
        }
    }
}

// ----------------------------------------------------------------------
// Core files
// ----------------------------------------------------------------------

pub(crate) fn encode_cores(
    mode: MapMode,
    epoch: u128,
    pool: &TermPool,
    cores: &[Arc<Vec<TermId>>],
) -> Vec<u8> {
    // Compact: migrate only the cores' reachable DAG (all vars, in
    // creation order, so var ids in the file equal session var ids —
    // the identity the find-only importer checks by name and width).
    let mut cp = TermPool::new();
    let mut mig = Migrator::new();
    mig.import_all_vars(pool, &mut cp);
    let roots: Vec<Vec<TermId>> = cores
        .iter()
        .map(|core| core.iter().map(|&t| mig.import(t, pool, &mut cp)).collect())
        .collect();
    let mut p = Enc::default();
    encode_pool(&mut p, &cp);
    p.u32(roots.len() as u32);
    for r in &roots {
        p.idx_list(r);
    }
    finish_file(KIND_CORES, &core_key_echo(mode, epoch), p.buf)
}

/// A decoded core file, held until the live session pool has interned
/// the terms each core needs ([`CorePack::import_into`] is retried;
/// import never interns into the session pool).
pub(crate) struct CorePack {
    pool: TermPool,
    cores: Vec<Vec<TermId>>,
    done: Vec<bool>,
}

impl CorePack {
    /// Cores not yet imported into a session store.
    pub(crate) fn pending(&self) -> usize {
        self.done.iter().filter(|&&d| !d).count()
    }

    /// Tries to import every still-pending core into `store` by
    /// find-only structural lookup against `session`. A core imports
    /// only when every one of its terms already exists in `session`
    /// (with its variables matching the session's by id, name and
    /// width); the rest stay pending for a later attempt. Returns how
    /// many cores were resolved and offered to the store this call —
    /// the store's subsumption check still deduplicates cores the
    /// session has independently re-learned (on a deterministically
    /// replayed stream that is all of them; the disk copy then serves
    /// as a checked backup rather than new pruning power).
    pub(crate) fn import_into(&mut self, session: &TermPool, store: &mut CoreStore) -> usize {
        let mut memo: HashMap<TermId, Option<TermId>> = HashMap::new();
        let mut imported = 0;
        for i in 0..self.cores.len() {
            if self.done[i] {
                continue;
            }
            let mapped: Option<Vec<TermId>> = self.cores[i]
                .iter()
                .map(|&t| find_term(t, &self.pool, session, &mut memo))
                .collect();
            if let Some(mut core) = mapped {
                core.sort_unstable();
                core.dedup();
                self.done[i] = true;
                store.insert(Arc::new(core));
                imported += 1;
            }
        }
        imported
    }
}

/// Maps `root` from `src` into `dst` without interning: every node is
/// rebuilt over already-mapped children and looked up structurally;
/// any absent node makes the whole term unmappable (`None`).
/// Iterative post-order — core constraint DAGs can be deep.
fn find_term(
    root: TermId,
    src: &TermPool,
    dst: &TermPool,
    memo: &mut HashMap<TermId, Option<TermId>>,
) -> Option<TermId> {
    let children = |t: &Term| -> Vec<TermId> {
        match *t {
            Term::Const { .. } | Term::Var { .. } => Vec::new(),
            Term::Unary(_, a) | Term::ZExt(a, _) | Term::SExt(a, _) => vec![a],
            Term::Extract { arg, .. } => vec![arg],
            Term::Binary(_, a, b) | Term::Concat(a, b) => vec![a, b],
            Term::Ite(c, a, b) => vec![c, a, b],
        }
    };
    let mut stack = vec![root];
    while let Some(&t) = stack.last() {
        if memo.contains_key(&t) {
            stack.pop();
            continue;
        }
        let node = src.get(t);
        let missing: Vec<TermId> = children(node)
            .into_iter()
            .filter(|c| !memo.contains_key(c))
            .collect();
        if !missing.is_empty() {
            stack.extend(missing);
            continue;
        }
        let m = |c: TermId| memo[&c];
        let mapped = match *node {
            Term::Const { .. } => dst.lookup(node),
            Term::Var { id, width } => {
                if (id as usize) < dst.num_vars()
                    && dst.var_width(id) == width
                    && dst.var_name(id) == src.var_name(id)
                {
                    Some(dst.var_term(id))
                } else {
                    None
                }
            }
            Term::Unary(op, a) => m(a).and_then(|a| dst.lookup(&Term::Unary(op, a))),
            Term::Binary(op, a, b) => match (m(a), m(b)) {
                (Some(a), Some(b)) => {
                    // Re-canonicalize commutative operands under *dst*
                    // ids (constant left, else lower id left — the
                    // `mk_binary` rule): the two pools intern the same
                    // structure under different id orders, so the
                    // node's stored operand order is pool-relative.
                    let (a, b) = if op.is_commutative() {
                        match (dst.const_value(a).is_some(), dst.const_value(b).is_some()) {
                            (false, true) => (b, a),
                            (false, false) if a > b => (b, a),
                            _ => (a, b),
                        }
                    } else {
                        (a, b)
                    };
                    dst.lookup(&Term::Binary(op, a, b))
                }
                _ => None,
            },
            Term::Ite(c, a, b) => match (m(c), m(a), m(b)) {
                (Some(c), Some(a), Some(b)) => dst.lookup(&Term::Ite(c, a, b)),
                _ => None,
            },
            Term::ZExt(a, w) => m(a).and_then(|a| dst.lookup(&Term::ZExt(a, w))),
            Term::SExt(a, w) => m(a).and_then(|a| dst.lookup(&Term::SExt(a, w))),
            Term::Extract { hi, lo, arg } => {
                m(arg).and_then(|arg| dst.lookup(&Term::Extract { hi, lo, arg }))
            }
            Term::Concat(a, b) => match (m(a), m(b)) {
                (Some(a), Some(b)) => dst.lookup(&Term::Concat(a, b)),
                _ => None,
            },
        };
        memo.insert(t, mapped);
        stack.pop();
    }
    memo[&root]
}

pub(crate) fn decode_cores(bytes: &[u8], mode: MapMode, epoch: u128) -> DecodeResult<CorePack> {
    let mut d = open_file(bytes, KIND_CORES, &core_key_echo(mode, epoch))?;
    let decoded = decode_pool(&mut d)?;
    let n_cores = d.u32()? as usize;
    let mut cores = Vec::new();
    for _ in 0..n_cores {
        cores.push(decoded.term_list(&mut d)?);
    }
    if !d.done() {
        return corrupt("trailing payload bytes");
    }
    let done = vec![false; cores.len()];
    Ok(CorePack {
        pool: decoded.pool,
        cores,
        done,
    })
}

/// Loads the core file for `(mode, epoch)` from `dir`, if present and
/// well-formed; every failure is logged (unless simply absent) and
/// treated as "no persisted cores".
pub(crate) fn load_cores(dir: &Path, mode: MapMode, epoch: u128) -> Option<CorePack> {
    let path = dir.join(core_file_name(mode, epoch));
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
        Err(e) => {
            eprintln!("dpv-store: cannot read {}: {e}", path.display());
            return None;
        }
    };
    match decode_cores(&bytes, mode, epoch) {
        Ok(pack) => Some(pack),
        Err(e) => {
            eprintln!("dpv-store: ignoring {}: {e}", path.display());
            None
        }
    }
}

/// Writes the core set for `(mode, epoch)` into `dir` (logged,
/// non-fatal on failure).
pub(crate) fn save_cores(
    dir: &Path,
    mode: MapMode,
    epoch: u128,
    pool: &TermPool,
    cores: &[Arc<Vec<TermId>>],
) -> bool {
    let bytes = encode_cores(mode, epoch, pool, cores);
    match write_atomic(dir, &core_file_name(mode, epoch), &bytes) {
        Ok(()) => true,
        Err(e) => {
            eprintln!(
                "dpv-store: cannot write {}: {e}",
                dir.join(core_file_name(mode, epoch)).display()
            );
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symexec::SymConfig;

    fn sample_key() -> SummaryKey {
        SummaryKey {
            program: 0x1234_5678_9abc_def0_1111_2222_3333_4444,
            mode: MapMode::Tables,
            tables: 7,
            sym: 42,
        }
    }

    /// A real stage summary to roundtrip (DecTTL under the default
    /// config: small but exercises vars, ites, extracts, crash
    /// segments).
    fn sample_stage() -> (SummaryKey, Arc<StoredStage>) {
        let e = elements::dec_ttl::dec_ttl();
        let cfg = SymConfig {
            max_pkt_bytes: 48,
            ..Default::default()
        };
        let store = crate::SummaryStore::new();
        let (stage, _) = store.stage(&e, MapMode::Abstract, &cfg).expect("ok");
        (SummaryKey::of(&e, MapMode::Abstract, &cfg), stage)
    }

    fn pool_fingerprint(p: &TermPool) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for id in 0..p.num_vars() as u32 {
            writeln!(s, "v {} {}", p.var_name(id), p.var_width(id)).unwrap();
        }
        for i in 0..p.len() {
            writeln!(s, "{:?}", p.get(p.term_id(i))).unwrap();
        }
        s
    }

    #[test]
    fn summary_roundtrips_byte_identically() {
        let (key, stage) = sample_stage();
        let bytes = encode_summary(&key, &stage);
        let back = decode_summary(&bytes, &key).expect("decodes");
        assert_eq!(pool_fingerprint(&back.pool), pool_fingerprint(&stage.pool));
        assert_eq!(back.states, stage.states);
        assert_eq!(back.segments.len(), stage.segments.len());
        for (a, b) in back.segments.iter().zip(&stage.segments) {
            assert_eq!(a.constraint, b.constraint);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.pkt_out, b.pkt_out);
            assert_eq!(a.len_out, b.len_out);
        }
        assert_eq!(back.input.pkt_byte_vars, stage.input.pkt_byte_vars);
        assert_eq!(back.input.pkt_len, stage.input.pkt_len);
        // Re-encoding the decoded stage reproduces the file exactly.
        assert_eq!(encode_summary(&key, &back), bytes);
    }

    #[test]
    fn header_tampering_is_rejected() {
        let (key, stage) = sample_stage();
        let bytes = encode_summary(&key, &stage);

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        assert!(decode_summary(&wrong_magic, &key).is_err());

        let mut bumped = bytes.clone();
        bumped[4] = bumped[4].wrapping_add(1); // version LE byte 0
        assert!(decode_summary(&bumped, &key).is_err());

        // A file for one key must not decode for another.
        let other = sample_key();
        assert!(decode_summary(&bytes, &other).is_err());
    }

    #[test]
    fn every_truncation_is_rejected_not_panicking() {
        let (key, stage) = sample_stage();
        let bytes = encode_summary(&key, &stage);
        // Exhaustive on short prefixes, sampled beyond.
        for n in (0..bytes.len()).step_by(7).chain([bytes.len() - 1]) {
            assert!(
                decode_summary(&bytes[..n], &key).is_err(),
                "prefix of {n} bytes must not decode"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected_or_identical() {
        let (key, stage) = sample_stage();
        let bytes = encode_summary(&key, &stage);
        let reference = pool_fingerprint(&stage.pool);
        // Fuzz-style sweep: flip one bit at a time across the whole
        // image. Every flip must either fail to decode (the expected
        // outcome: header checks + checksum) or — if it ever survived
        // — decode to the identical summary. It must never panic.
        let step = (bytes.len() / 997).max(1);
        for byte in (0..bytes.len()).step_by(step) {
            for bit in 0..8 {
                let mut img = bytes.clone();
                img[byte] ^= 1 << bit;
                match decode_summary(&img, &key) {
                    Err(_) => {}
                    Ok(back) => {
                        assert_eq!(pool_fingerprint(&back.pool), reference);
                    }
                }
            }
        }
    }

    #[test]
    fn malformed_payloads_fail_validation_before_constructors() {
        // Handcraft payloads that pass the frame (we recompute the
        // checksum) but violate structural invariants; each must be a
        // clean decode error even under debug assertions.
        let key = sample_key();
        let frame = |payload: Vec<u8>| finish_file(KIND_SUMMARY, &summary_key_echo(&key), payload);
        let cases: Vec<(&str, Vec<u8>)> = vec![
            ("zero-width const", {
                let mut e = Enc::default();
                e.u32(0); // vars
                e.u32(1); // terms
                e.u8(0); // const
                e.u32(0); // width 0
                e.u64(1);
                e.buf
            }),
            ("forward child reference", {
                let mut e = Enc::default();
                e.u32(0);
                e.u32(1);
                e.u8(2); // unary
                e.u8(0); // not
                e.u32(0); // child 0 == self
                e.buf
            }),
            ("ite with wide condition", {
                let mut e = Enc::default();
                e.u32(0);
                e.u32(3);
                e.u8(0);
                e.u32(8);
                e.u64(1); // const w8
                e.u8(0);
                e.u32(8);
                e.u64(2);
                e.u8(4); // ite(c=0,a=1,b=1): cond width 8
                e.u32(0);
                e.u32(1);
                e.u32(1);
                e.buf
            }),
            ("extract beyond width", {
                let mut e = Enc::default();
                e.u32(0);
                e.u32(2);
                e.u8(0);
                e.u32(8);
                e.u64(1);
                e.u8(7); // extract hi=9 lo=0 of w8
                e.u32(9);
                e.u32(0);
                e.u32(0);
                e.buf
            }),
            ("var out of creation order", {
                let mut e = Enc::default();
                e.u32(2); // two vars in the table
                e.str("x");
                e.u32(8);
                e.str("y");
                e.u32(8);
                e.u32(1);
                e.u8(1); // var record id 1 first
                e.u32(1);
                e.buf
            }),
            ("concat overflowing max width", {
                let mut e = Enc::default();
                e.u32(0);
                e.u32(3);
                e.u8(0);
                e.u32(64);
                e.u64(1);
                e.u8(0);
                e.u32(64);
                e.u64(2);
                e.u8(8);
                e.u32(0);
                e.u32(1);
                e.buf
            }),
        ];
        for (what, payload) in cases {
            assert!(
                decode_summary(&frame(payload), &key).is_err(),
                "{what} must be rejected"
            );
        }
    }

    #[test]
    fn cores_roundtrip_and_import_find_only() {
        let mut pool = TermPool::new();
        let x = pool.fresh_var("x", 8);
        let y = pool.fresh_var("y", 8);
        let c5 = pool.mk_const(8, 5);
        let lt = pool.mk_ult(x, c5);
        let ge = pool.mk_ule(c5, x);
        let sum = pool.mk_add(x, y);
        let eq = pool.mk_eq(sum, c5);
        let cores = vec![Arc::new(vec![lt, ge]), Arc::new(vec![eq, lt])];
        let bytes = encode_cores(MapMode::Abstract, 99, &pool, &cores);
        let mut pack = decode_cores(&bytes, MapMode::Abstract, 99).expect("decodes");
        assert_eq!(pack.pending(), 2);
        // Wrong epoch / mode: rejected.
        assert!(decode_cores(&bytes, MapMode::Abstract, 98).is_err());
        assert!(decode_cores(&bytes, MapMode::Tables, 99).is_err());

        // A fresh session that replays only part of the trajectory:
        // the first core's terms exist, the second's `x + y` doesn't.
        let mut session = TermPool::new();
        let sx = session.fresh_var("x", 8);
        session.fresh_var("y", 8);
        let sc5 = session.mk_const(8, 5);
        let slt = session.mk_ult(sx, sc5);
        let sge = session.mk_ule(sc5, sx);
        let pool_len_before = session.len();
        let vars_before = session.num_vars();
        let mut store = CoreStore::new();
        assert_eq!(pack.import_into(&session, &mut store), 1);
        assert_eq!(pack.pending(), 1, "partial trajectory: one core waits");
        assert_eq!(store.len(), 1);
        assert_eq!(session.len(), pool_len_before, "import never interns");
        assert_eq!(session.num_vars(), vars_before);
        let mut set = vec![slt, sge];
        set.sort_unstable();
        let fp = set.iter().fold(0u64, |acc, &t| {
            acc | (1u64 << ((t.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58))
        });
        assert!(store.subsumed(fp, &set), "imported core prunes");

        // Once the session interns the remaining terms, the retry
        // imports the second core.
        let ssum = session.mk_add(sx, session.var_term(1));
        session.mk_eq(ssum, sc5);
        assert_eq!(pack.import_into(&session, &mut store), 1);
        assert_eq!(pack.pending(), 0);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn core_import_rejects_mismatched_vars() {
        let mut pool = TermPool::new();
        let x = pool.fresh_var("x", 8);
        let c = pool.mk_const(8, 1);
        let t = pool.mk_ult(x, c);
        let bytes = encode_cores(MapMode::Tables, 1, &pool, &[Arc::new(vec![t])]);
        let mut pack = decode_cores(&bytes, MapMode::Tables, 1).expect("decodes");
        // Session var 0 has a different width: the core must not map.
        let mut session = TermPool::new();
        let sx = session.fresh_var("x", 16);
        let sc = session.mk_const(16, 1);
        session.mk_ult(sx, sc);
        let mut store = CoreStore::new();
        assert_eq!(pack.import_into(&session, &mut store), 0);
        assert_eq!(store.len(), 0);
        assert_eq!(pack.pending(), 1);
    }

    #[test]
    fn file_names_are_distinct_per_key() {
        let a = sample_key();
        let mut b = a;
        b.tables ^= 1;
        assert_ne!(summary_file_name(&a), summary_file_name(&b));
        let mut c = a;
        c.mode = MapMode::Abstract;
        assert_ne!(summary_file_name(&a), summary_file_name(&c));
        assert_ne!(
            core_file_name(MapMode::Abstract, 5),
            core_file_name(MapMode::Tables, 5)
        );
    }
}
