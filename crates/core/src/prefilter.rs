//! Concrete-execution prefilter for step-2 feasibility queries.
//!
//! Most composed paths the step-2 search wants to *extend* are
//! trivially feasible — an ordinary packet walks them. Proving that
//! with CDCL costs a bit-blast and a solve; proving it by *running*
//! the composed constraints on a handful of concrete packets costs a
//! term-DAG evaluation. [`Prefilter`] does the latter: it keeps a
//! small deterministic packet corpus and, before a query reaches the
//! solver, evaluates the constraint conjuncts under each corpus
//! assignment ([`bvsolve::eval`], the crate's reference semantics).
//! If every conjunct evaluates to 1 the query is satisfiable — by
//! exhibition, not by search — and the solver is skipped.
//!
//! **Soundness.** A corpus entry is a *total* assignment as far as
//! `eval` is concerned: assigned packet bytes and length read their
//! corpus values, every other variable (havocs, metadata) reads 0. A
//! conjunction that evaluates to 1 under any total assignment is
//! satisfiable, so a prefilter hit is always a correct `Sat` — the
//! filter can only accelerate SAT answers, never refute (a miss says
//! nothing) and never flip a verdict. Evaluation is conjunct-by-
//! conjunct with early termination, so misses usually cost one eval
//! of whichever conjunct the corpus packet violates first.
//!
//! The static corpus rarely survives deep paths on its own, so the
//! filter also **learns**: every satisfying model the solver produces
//! is adopted into a small bounded cache ([`Prefilter::learn`]) and
//! probed before the static packets. Sibling paths in the step-2
//! search share long constraint prefixes, so the packet that walked
//! one path usually walks the next — on refutation-heavy proofs most
//! feasibility checks for path *extensions* hit this cache and skip
//! the solver entirely.
//!
//! **Determinism.** The static corpus is a fixed function of the
//! packet window size and the configured length bounds; the learned
//! cache follows the engine's query order (per worker, in parallel
//! runs), so *hit counts* may vary across engines while verdicts
//! cannot — a hit is always a `Sat` the solver would also have
//! reached. Reported counterexamples stay byte-identical with the
//! prefilter on or off: every reported violation goes through
//! canonical minimal-model extraction
//! (`QuerySolver::confirm_model`), which depends only on the path
//! constraint's semantics — never on whether a corpus packet, a
//! session model or a portfolio racer decided the query first.

use bvsolve::{eval, Assignment, TermId, TermPool};
use symexec::{SymConfig, SymInput};

/// Counters for the concrete-execution prefilter (see
/// [`crate::VerifyConfig::concrete_prefilter`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct PrefilterStats {
    /// Queries the prefilter evaluated before the solver saw them.
    pub checks: u64,
    /// Queries decided `Sat` by a corpus packet (solver skipped).
    pub hits: u64,
}

impl PrefilterStats {
    /// Per-field sum, for merging parallel workers' counters.
    pub(crate) fn merge(&mut self, other: &PrefilterStats) {
        self.checks += other.checks;
        self.hits += other.hits;
    }
}

/// How many deterministic packets the corpus holds.
const CORPUS_SIZE: usize = 4;

/// How many recently learned solver models the corpus additionally
/// holds (newest first, oldest evicted).
const LEARNED_CAP: usize = 8;

/// SplitMix64 finalizer — the corpus's deterministic byte pattern.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The concrete-execution prefilter: a deterministic packet corpus
/// plus hit/check counters. Disabled instances answer `None` for
/// every query at zero cost.
pub(crate) struct Prefilter {
    corpus: Vec<Assignment>,
    /// Satisfying assignments from recent solver models: sibling
    /// paths share long constraint prefixes, so a packet that walked
    /// one path usually walks the next — checked before the static
    /// corpus, newest first.
    learned: Vec<Assignment>,
    pub(crate) stats: PrefilterStats,
}

impl Prefilter {
    /// Builds the corpus over `input`'s packet variables: the all-zero
    /// minimum-length packet, the all-0xFF maximum-length packet, an
    /// incrementing-byte packet, and a SplitMix64-patterned packet at
    /// intermediate lengths. When `enabled` is false the corpus is
    /// empty and every probe is a free miss.
    pub(crate) fn new(enabled: bool, input: &SymInput, sym: &SymConfig) -> Self {
        let mut corpus = Vec::new();
        if enabled {
            let min_len = sym.min_pkt_len;
            let max_len = sym.max_pkt_bytes as u64;
            let lens = [
                min_len,
                max_len,
                (min_len + max_len) / 2,
                max_len.min(min_len + 64),
            ];
            for (k, len) in lens.into_iter().enumerate().take(CORPUS_SIZE) {
                let mut a = Assignment::new();
                a.set(input.len_var, len);
                for (i, &vid) in input.pkt_byte_vars.iter().enumerate() {
                    let byte = match k {
                        0 => 0,
                        1 => 0xFF,
                        2 => i as u64 & 0xFF,
                        _ => mix(i as u64) & 0xFF,
                    };
                    a.set(vid, byte);
                }
                corpus.push(a);
            }
        }
        Prefilter {
            corpus,
            learned: Vec::new(),
            stats: PrefilterStats::default(),
        }
    }

    /// Probes `cs` against the corpus — learned models first (newest
    /// wins, for prefix locality), then the static packets:
    /// `Some(packet assignment)` when some corpus entry satisfies
    /// every conjunct (a sound `Sat`), `None` when none does (the
    /// query goes to the solver).
    pub(crate) fn try_sat(&mut self, pool: &TermPool, cs: &[TermId]) -> Option<&Assignment> {
        if self.corpus.is_empty() {
            return None;
        }
        self.stats.checks += 1;
        let hit = self
            .learned
            .iter()
            .chain(&self.corpus)
            .position(|a| cs.iter().all(|&c| eval(pool, c, a) == 1))?;
        self.stats.hits += 1;
        Some(
            self.learned
                .iter()
                .chain(&self.corpus)
                .nth(hit)
                .expect("position just found"),
        )
    }

    /// Adopts a satisfying solver model into the corpus. Sibling
    /// composed paths differ only in their last few conjuncts, so the
    /// model that walked one path usually satisfies the next query
    /// outright — this is what turns the filter from a cold-start
    /// heuristic into a model cache. Bounded at [`LEARNED_CAP`]
    /// entries, oldest evicted; a no-op when the filter is disabled.
    pub(crate) fn learn(&mut self, a: &Assignment) {
        if self.corpus.is_empty() {
            return;
        }
        if self.learned.len() == LEARNED_CAP {
            self.learned.pop();
        }
        self.learned.insert(0, a.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvsolve::TermPool;

    fn setup() -> (TermPool, SymInput, SymConfig) {
        let mut pool = TermPool::new();
        let sym = SymConfig::default();
        let input = SymInput::fresh(&mut pool, &sym, "t");
        (pool, input, sym)
    }

    #[test]
    fn hit_is_a_real_packet() {
        let (mut pool, input, sym) = setup();
        let mut pf = Prefilter::new(true, &input, &sym);
        // byte[0] == 0 ∧ len ≤ 96: the all-zero corpus packet.
        let zero = pool.mk_const(8, 0);
        let c1 = pool.mk_eq(input.pkt_bytes[0], zero);
        let max = pool.mk_const(16, sym.max_pkt_bytes as u64);
        let c2 = pool.mk_ule(input.pkt_len, max);
        let hit = pf.try_sat(&pool, &[c1, c2]).cloned();
        let a = hit.expect("the all-zero packet satisfies this");
        assert_eq!(eval(&pool, c1, &a), 1);
        assert_eq!(pf.stats.hits, 1);
        assert_eq!(pf.stats.checks, 1);
    }

    #[test]
    fn unsat_conjunction_misses() {
        let (mut pool, input, sym) = setup();
        let mut pf = Prefilter::new(true, &input, &sym);
        let b = input.pkt_bytes[3];
        let c7 = pool.mk_const(8, 7);
        let c9 = pool.mk_const(8, 9);
        let eq7 = pool.mk_eq(b, c7);
        let eq9 = pool.mk_eq(b, c9);
        assert!(pf.try_sat(&pool, &[eq7, eq9]).is_none());
        assert_eq!(pf.stats.hits, 0);
        assert_eq!(pf.stats.checks, 1);
    }

    #[test]
    fn learned_model_decides_sibling_query() {
        let (mut pool, input, sym) = setup();
        let mut pf = Prefilter::new(true, &input, &sym);
        // A constraint no static corpus packet satisfies: byte[0] == 77.
        let c77 = pool.mk_const(8, 77);
        let eq77 = pool.mk_eq(input.pkt_bytes[0], c77);
        assert!(pf.try_sat(&pool, &[eq77]).is_none());
        // Learn the "solver model" for it; the sibling query (same
        // prefix, one more satisfied conjunct) now hits concretely.
        let mut model = Assignment::new();
        model.set(input.pkt_byte_vars[0], 77);
        model.set(input.len_var, 20);
        pf.learn(&model);
        let min = pool.mk_const(16, 8);
        let sibling = pool.mk_ule(min, input.pkt_len);
        let hit = pf.try_sat(&pool, &[eq77, sibling]).cloned();
        assert!(hit.is_some(), "learned model must decide the sibling");
        assert_eq!(pf.stats.checks, 2);
        assert_eq!(pf.stats.hits, 1);
        // The cache is bounded: over-filling evicts, never grows.
        for _ in 0..3 * LEARNED_CAP {
            pf.learn(&model);
        }
        assert_eq!(pf.learned.len(), LEARNED_CAP);
    }

    #[test]
    fn disabled_filter_is_inert() {
        let (mut pool, input, sym) = setup();
        let mut pf = Prefilter::new(false, &input, &sym);
        let t = pool.mk_eq(input.pkt_bytes[0], input.pkt_bytes[0]);
        assert!(pf.try_sat(&pool, &[t]).is_none());
        assert_eq!(pf.stats.checks, 0);
        // Learning is a no-op too: a disabled filter stays empty.
        pf.learn(&Assignment::new());
        assert!(pf.try_sat(&pool, &[t]).is_none());
        assert_eq!(pf.stats.checks, 0);
    }
}
