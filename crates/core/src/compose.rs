//! Verification step 2 primitives: composing segment summaries.
//!
//! `compose` implements the paper's constraint composition: element
//! B's path constraint, with B's symbolic input substituted by element
//! A's symbolic output, conjoined onto A's path constraint. Havoc
//! variables (abstracted map reads) are renamed fresh per
//! instantiation, so two loop iterations (or two paths through the
//! same element) never alias each other's unknown state.

use bvsolve::{substitute, TermId, TermPool};
use std::collections::{HashMap, HashSet};
use symexec::{MapOpRecord, SegOutcome, Segment, SymInput};

/// The composed symbolic state after a prefix of pipeline segments —
/// all terms range over the *pipeline* input variables plus renamed
/// havoc variables.
#[derive(Debug, Clone)]
pub struct ComposedState {
    /// Conjunction of all composed path constraints.
    pub constraint: Vec<TermId>,
    /// Statically proven facts accumulated from the composed segments
    /// (`Segment::assumed`, substituted like constraints). Implied by
    /// `constraint` on every model; feasibility checks may conjoin
    /// them so the cheap solver layers — which reason per conjunct —
    /// can refute compositions they would otherwise pass to the
    /// expensive layers, but counterexample extraction must ignore
    /// them.
    pub assumed: Vec<TermId>,
    /// Packet bytes as terms over the pipeline input.
    pub pkt: Vec<TermId>,
    /// Packet length term.
    pub len: TermId,
    /// Metadata terms.
    pub meta: Vec<TermId>,
    /// Total instructions along the composed path.
    pub instrs: u64,
    /// (stage index, segment index) trace, for reporting.
    pub trace: Vec<(usize, usize)>,
    /// Map operations along the path (terms already composed), for the
    /// §3.4 private-state analysis.
    pub map_ops: Vec<MapOpRecord>,
}

impl ComposedState {
    /// The initial state: the pipeline input itself.
    pub fn initial(input: &SymInput) -> Self {
        ComposedState {
            constraint: input.base_constraints.clone(),
            assumed: Vec::new(),
            pkt: input.pkt_bytes.clone(),
            len: input.pkt_len,
            meta: input.meta.clone(),
            instrs: 0,
            trace: Vec::new(),
            map_ops: Vec::new(),
        }
    }
}

/// Composes `segment` (a summary over `elem_input`) onto `state`.
///
/// * every input variable of `elem_input` is replaced by the
///   corresponding term of `state` (packet bytes, length, metadata);
/// * every *other* free variable of the segment (havocs) is replaced by
///   a fresh variable;
/// * the segment's constraint is substituted and conjoined, its
///   transforms substituted into the new state.
pub fn compose(
    pool: &mut TermPool,
    state: &ComposedState,
    elem_input: &SymInput,
    segment: &Segment,
    stage_idx: usize,
    seg_idx: usize,
) -> ComposedState {
    // Build the substitution for declared inputs.
    let mut map: HashMap<u32, TermId> = HashMap::new();
    for (i, &vid) in elem_input.pkt_byte_vars.iter().enumerate() {
        map.insert(vid, state.pkt[i]);
    }
    map.insert(elem_input.len_var, state.len);
    for (s, &vid) in elem_input.meta_vars.iter().enumerate() {
        map.insert(vid, state.meta[s]);
    }

    // Collect havoc variables: free vars of the segment not in the map.
    let mut seen: HashSet<u32> = HashSet::new();
    let mut all_terms: Vec<TermId> = Vec::new();
    all_terms.extend(segment.constraint.iter().copied());
    all_terms.extend(segment.assumed.iter().copied());
    all_terms.extend(segment.pkt_out.iter().copied());
    all_terms.push(segment.len_out);
    all_terms.extend(segment.meta_out.iter().copied());
    for op in &segment.map_ops {
        all_terms.push(op.key);
        if let Some(v) = op.value {
            all_terms.push(v);
        }
    }
    for &t in &all_terms {
        for vid in pool.free_vars(t) {
            if !map.contains_key(&vid) && seen.insert(vid) {
                let w = pool.var_width(vid);
                let name = format!("{}@{}_{}", pool.var_name(vid), stage_idx, seg_idx);
                let fresh = pool.fresh_var(&name, w);
                map.insert(vid, fresh);
            }
        }
    }
    // Havoc variables recorded by map ops may not occur in any term
    // (e.g. an unused `found` flag); rename them too so the §3.4
    // analysis sees per-instantiation variables.
    for op in &segment.map_ops {
        for vid in [op.havoc_value_var, op.havoc_flag_var]
            .into_iter()
            .flatten()
        {
            map.entry(vid).or_insert_with(|| {
                let w = pool.var_width(vid);
                let name = format!("{}@{}_{}", pool.var_name(vid), stage_idx, seg_idx);

                pool.fresh_var(&name, w)
            });
        }
    }

    let mut constraint = state.constraint.clone();
    for &c in &segment.constraint {
        let c2 = substitute(pool, c, &map);
        // Skip trivially-true conjuncts to keep constraints compact.
        if !pool.is_true(c2) {
            constraint.push(c2);
        }
    }
    let mut assumed = state.assumed.clone();
    for &c in &segment.assumed {
        let c2 = substitute(pool, c, &map);
        if !pool.is_true(c2) {
            assumed.push(c2);
        }
    }
    let pkt = segment
        .pkt_out
        .iter()
        .map(|&t| substitute(pool, t, &map))
        .collect();
    let len = substitute(pool, segment.len_out, &map);
    let meta = segment
        .meta_out
        .iter()
        .map(|&t| substitute(pool, t, &map))
        .collect();
    let mut map_ops = state.map_ops.clone();
    for op in &segment.map_ops {
        map_ops.push(MapOpRecord {
            map: op.map,
            kind: op.kind,
            key: substitute(pool, op.key, &map),
            value: op.value.map(|v| substitute(pool, v, &map)),
            havoc_value_var: op
                .havoc_value_var
                .map(|v| term_var_id(pool, map[&v]).unwrap_or(v)),
            havoc_flag_var: op
                .havoc_flag_var
                .map(|v| term_var_id(pool, map[&v]).unwrap_or(v)),
        });
    }
    let mut trace = state.trace.clone();
    trace.push((stage_idx, seg_idx));
    ComposedState {
        constraint,
        assumed,
        pkt,
        len,
        meta,
        instrs: state.instrs + segment.instrs,
        trace,
        map_ops,
    }
}

fn term_var_id(pool: &TermPool, t: TermId) -> Option<u32> {
    match *pool.get(t) {
        bvsolve::Term::Var { id, .. } => Some(id),
        _ => None,
    }
}

/// The outcome of a composed segment (re-exported for engine use).
pub fn outcome_of(seg: &Segment) -> SegOutcome {
    seg.outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use symexec::{execute, AbstractMapModel, SymConfig};

    /// The paper's Fig. 1 toy pipeline, byte-sized: E1 clamps byte 0 to
    /// ≥ 16 (out = in < 16 ? 16 : in); E2 asserts byte 0 ≥ 16 — crash
    /// suspect in isolation, infeasible after composition.
    fn toy_programs() -> (dpir::Program, dpir::Program) {
        let mut b1 = dpir::ProgramBuilder::new("E1");
        let v = b1.pkt_load(8, 0u64);
        let small = b1.ult(8, v, 16u64);
        let (s, big) = b1.fork(small);
        let _ = s;
        b1.pkt_store(8, 0u64, 16u64);
        b1.emit(0);
        b1.switch_to(big);
        b1.emit(0);
        let e1 = b1.build().expect("valid");

        let mut b2 = dpir::ProgramBuilder::new("E2");
        let v = b2.pkt_load(8, 0u64);
        let ok = b2.ule(8, 16u64, v);
        b2.assert_(ok, "in >= 16");
        b2.emit(0);
        let e2 = b2.build().expect("valid");
        (e1, e2)
    }

    #[test]
    fn fig1_composition_discharges_suspect() {
        let (p1, p2) = toy_programs();
        let cfg = SymConfig {
            max_pkt_bytes: 8,
            min_pkt_len: 1, // keep the toy focused on the assert
            ..Default::default()
        };
        let mut pool = TermPool::new();
        let pipeline_input = SymInput::fresh(&mut pool, &cfg, "in");
        let in1 = SymInput::fresh(&mut pool, &cfg, "e0");
        let in2 = SymInput::fresh(&mut pool, &cfg, "e1");
        let mut m = AbstractMapModel::new();
        let r1 = execute(&mut pool, &p1, &in1, &mut m, &cfg).expect("ok");
        let r2 = execute(&mut pool, &p2, &in2, &mut m, &cfg).expect("ok");

        // E2 alone has a feasible crash segment (suspect e3 of Fig. 1).
        let crash_segs: Vec<&Segment> = r2
            .segments
            .iter()
            .filter(|s| s.outcome.is_crash())
            .collect();
        assert_eq!(crash_segs.len(), 1);

        // Compose each E1 emit segment with the E2 crash segment; both
        // compositions must be infeasible (the paper's p1, p4).
        let mut solver = bvsolve::BvSolver::new();
        let init = ComposedState::initial(&pipeline_input);
        let mut checked = 0;
        for (i, s1) in r1.segments.iter().enumerate() {
            if s1.outcome != SegOutcome::Emit(0) {
                continue;
            }
            let mid = compose(&mut pool, &init, &in1, s1, 0, i);
            let full = compose(&mut pool, &mid, &in2, crash_segs[0], 1, 0);
            let verdict = solver.check(&mut pool, &full.constraint);
            assert!(verdict.is_unsat(), "suspect must be infeasible in context");
            checked += 1;
        }
        assert_eq!(checked, 2, "two feasible E1 segments reach E2");
    }

    #[test]
    fn composition_renames_havocs_per_instantiation() {
        // A program whose only effect is reading a map: composing the
        // same segment twice must produce *different* havoc variables.
        let mut b = dpir::ProgramBuilder::new("rd");
        let m = b.map(dpir::MapDecl {
            name: "m".into(),
            key_width: 8,
            value_width: 8,
            capacity: 4,
            is_static: false,
        });
        let (_f, v) = b.map_read(m, 1u64);
        b.pkt_store(8, 0u64, v);
        b.emit(0);
        let prog = b.build().expect("valid");
        let cfg = SymConfig {
            max_pkt_bytes: 4,
            min_pkt_len: 4,
            ..Default::default()
        };
        let mut pool = TermPool::new();
        let pipeline_input = SymInput::fresh(&mut pool, &cfg, "in");
        let ein = SymInput::fresh(&mut pool, &cfg, "e0");
        let mut model = AbstractMapModel::new();
        let r = execute(&mut pool, &prog, &ein, &mut model, &cfg).expect("ok");
        let seg = r
            .segments
            .iter()
            .find(|s| s.outcome == SegOutcome::Emit(0))
            .expect("emit segment");
        let init = ComposedState::initial(&pipeline_input);
        let c1 = compose(&mut pool, &init, &ein, seg, 0, 0);
        let c2 = compose(&mut pool, &c1, &ein, seg, 1, 0);
        // Byte 0 after the second instantiation differs from the first
        // (different havoc), so "byte changed between the two reads" is
        // satisfiable.
        let ne = pool.mk_ne(c1.pkt[0], c2.pkt[0]);
        let mut solver = bvsolve::BvSolver::new();
        let mut cs = c2.constraint.clone();
        cs.push(ne);
        assert!(solver.check(&mut pool, &cs).is_sat());
    }
}
