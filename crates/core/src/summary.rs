//! Verification step 1: per-element segment summaries.

use bvsolve::{Migrator, TermPool};
use dataplane::{ElementKind, Pipeline, TableConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use symexec::{
    execute, AbstractMapModel, MapBranch, MapModel, MapOpRecord, Segment, SymConfig, SymError,
    SymInput, TableMapModel,
};

/// How static maps are modeled during step 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapMode {
    /// Abstract everything (crash-freedom / bounded-execution with
    /// arbitrary configuration — paper §4).
    Abstract,
    /// Use configured contents for static maps, summarized as ITE
    /// chains (filtering with a specific configuration); private maps
    /// stay abstract.
    Tables,
}

/// Step-1 result for one pipeline stage.
#[derive(Debug)]
pub struct StageSummary {
    /// Element name.
    pub name: String,
    /// The element's own symbolic input (substitution points).
    pub input: SymInput,
    /// All feasible segments.
    pub segments: Vec<Segment>,
    /// `Some(max_iters)` for loop elements.
    pub loop_iters: Option<u32>,
    /// States explored during step 1 (Fig. 4(c) "#states").
    pub states: usize,
}

/// Step-1 result for the whole pipeline.
#[derive(Debug)]
pub struct PipelineSummaries {
    /// The pipeline-level symbolic input (the packet as received).
    pub input: SymInput,
    /// Per-stage summaries, in stage order.
    pub stages: Vec<StageSummary>,
    /// Total states across all stages.
    pub total_states: usize,
}

/// A per-stage map model: configured static maps become ITE-chain
/// tables (in [`MapMode::Tables`]), everything else havocs.
struct StageMapModel {
    tables: TableMapModel,
    table_ids: Vec<u32>,
    fallback: AbstractMapModel,
}

impl StageMapModel {
    fn new(element: &dataplane::Element, mode: MapMode) -> Self {
        let mut tables = TableMapModel::new();
        let mut table_ids = Vec::new();
        if mode == MapMode::Tables {
            for (map, cfg) in &element.tables {
                let pairs = match cfg {
                    TableConfig::Exact(p) => p.clone(),
                    TableConfig::Lpm(_) => cfg.as_pairs(),
                };
                tables.set_table(*map, pairs);
                table_ids.push(map.0);
            }
        }
        StageMapModel {
            tables,
            table_ids,
            fallback: AbstractMapModel::new(),
        }
    }

    fn is_table(&self, map: dpir::MapId) -> bool {
        self.table_ids.contains(&map.0)
    }
}

impl MapModel for StageMapModel {
    fn read(
        &mut self,
        pool: &mut TermPool,
        map: dpir::MapId,
        decl: &dpir::MapDecl,
        key: bvsolve::TermId,
    ) -> Vec<MapBranch> {
        if self.is_table(map) {
            self.tables.read(pool, map, decl, key)
        } else {
            self.fallback.read(pool, map, decl, key)
        }
    }

    fn write(
        &mut self,
        pool: &mut TermPool,
        map: dpir::MapId,
        decl: &dpir::MapDecl,
        key: bvsolve::TermId,
        value: bvsolve::TermId,
    ) -> Vec<MapBranch> {
        if self.is_table(map) {
            self.tables.write(pool, map, decl, key, value)
        } else {
            self.fallback.write(pool, map, decl, key, value)
        }
    }

    fn test(
        &mut self,
        pool: &mut TermPool,
        map: dpir::MapId,
        decl: &dpir::MapDecl,
        key: bvsolve::TermId,
    ) -> Vec<MapBranch> {
        if self.is_table(map) {
            self.tables.test(pool, map, decl, key)
        } else {
            self.fallback.test(pool, map, decl, key)
        }
    }
}

/// Runs step 1 over every stage of `pipeline`.
///
/// Each element (or loop body, per Condition 1) is executed exactly
/// once with fully unconstrained symbolic input — the per-element work
/// is `m · 2^n`, not `2^(m·n)` (§2.2).
pub fn summarize_pipeline(
    pool: &mut TermPool,
    pipeline: &Pipeline,
    cfg: &SymConfig,
    mode: MapMode,
) -> Result<PipelineSummaries, SymError> {
    let input = SymInput::fresh(pool, cfg, "in");
    let mut stages = Vec::with_capacity(pipeline.stages.len());
    let mut total_states = 0usize;
    for (k, stage) in pipeline.stages.iter().enumerate() {
        let elem = &stage.element;
        let elem_input = SymInput::fresh(pool, cfg, &format!("e{k}"));
        let mut model = StageMapModel::new(elem, mode);
        let prog = elem.program();
        let report = execute(pool, prog, &elem_input, &mut model, cfg)?;
        total_states += report.states;
        stages.push(StageSummary {
            name: elem.name.clone(),
            input: elem_input,
            segments: report.segments,
            loop_iters: match &elem.kind {
                ElementKind::Straight(_) => None,
                ElementKind::Loop { max_iters, .. } => Some(*max_iters),
            },
            states: report.states,
        });
    }
    Ok(PipelineSummaries {
        input,
        stages,
        total_states,
    })
}

/// Output of one stage's step-1 run in a worker-private pool, before
/// migration into the master pool.
struct LocalStage {
    pool: TermPool,
    input: SymInput,
    segments: Vec<Segment>,
    states: usize,
}

/// Runs step 1 over every stage of `pipeline`, one stage per worker
/// across `threads` threads (0 = all available cores).
///
/// Each element executes in a worker-private [`TermPool`] (identical
/// execution to [`summarize_pipeline`], since stages are independent by
/// construction — §2.2's `m · 2^n`); results are then migrated into
/// `pool` in stage order, including every worker variable in creation
/// order, so the master pool's variable numbering — and therefore
/// every downstream model and counterexample — is identical to a
/// sequential run's.
pub fn summarize_pipeline_par(
    pool: &mut TermPool,
    pipeline: &Pipeline,
    cfg: &SymConfig,
    mode: MapMode,
    threads: usize,
) -> Result<PipelineSummaries, SymError> {
    let input = SymInput::fresh(pool, cfg, "in");
    let n = pipeline.stages.len();
    let threads = effective_threads(threads).min(n.max(1));

    let slots: Vec<Mutex<Option<Result<LocalStage, SymError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= n {
                    break;
                }
                let elem = &pipeline.stages[k].element;
                let mut wpool = TermPool::new();
                let elem_input = SymInput::fresh(&mut wpool, cfg, &format!("e{k}"));
                let mut model = StageMapModel::new(elem, mode);
                let res = execute(&mut wpool, elem.program(), &elem_input, &mut model, cfg).map(
                    |report| LocalStage {
                        pool: wpool,
                        input: elem_input,
                        segments: report.segments,
                        states: report.states,
                    },
                );
                *slots[k].lock().expect("stage slot poisoned") = Some(res);
            });
        }
    });

    let mut stages = Vec::with_capacity(n);
    let mut total_states = 0usize;
    for (k, slot) in slots.into_iter().enumerate() {
        let local = slot
            .into_inner()
            .expect("stage slot poisoned")
            .expect("worker pool processed every stage")?;
        total_states += local.states;
        stages.push(migrate_stage(pool, pipeline, k, local));
    }
    Ok(PipelineSummaries {
        input,
        stages,
        total_states,
    })
}

/// Resolves a thread-count knob: `0` means all available cores (the
/// single policy behind every `threads` parameter in this crate).
pub(crate) fn effective_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Imports a worker-pool stage result into the master pool.
fn migrate_stage(
    pool: &mut TermPool,
    pipeline: &Pipeline,
    k: usize,
    local: LocalStage,
) -> StageSummary {
    let mut mig = Migrator::new();
    // All worker variables first, in creation order: gives the master
    // pool the same numbering a sequential run would have produced.
    mig.import_all_vars(&local.pool, pool);
    let input = SymInput {
        pkt_bytes: local
            .input
            .pkt_bytes
            .iter()
            .map(|&t| mig.import(t, &local.pool, pool))
            .collect(),
        pkt_len: mig.import(local.input.pkt_len, &local.pool, pool),
        meta: local
            .input
            .meta
            .iter()
            .map(|&t| mig.import(t, &local.pool, pool))
            .collect(),
        pkt_byte_vars: local
            .input
            .pkt_byte_vars
            .iter()
            .map(|&v| mig.mapped_var(v).expect("input var imported"))
            .collect(),
        len_var: mig
            .mapped_var(local.input.len_var)
            .expect("len var imported"),
        meta_vars: local
            .input
            .meta_vars
            .iter()
            .map(|&v| mig.mapped_var(v).expect("meta var imported"))
            .collect(),
        base_constraints: local
            .input
            .base_constraints
            .iter()
            .map(|&t| mig.import(t, &local.pool, pool))
            .collect(),
    };
    let segments = local
        .segments
        .iter()
        .map(|seg| Segment {
            constraint: seg
                .constraint
                .iter()
                .map(|&t| mig.import(t, &local.pool, pool))
                .collect(),
            outcome: seg.outcome,
            pkt_out: seg
                .pkt_out
                .iter()
                .map(|&t| mig.import(t, &local.pool, pool))
                .collect(),
            len_out: mig.import(seg.len_out, &local.pool, pool),
            meta_out: seg
                .meta_out
                .iter()
                .map(|&t| mig.import(t, &local.pool, pool))
                .collect(),
            instrs: seg.instrs,
            map_ops: seg
                .map_ops
                .iter()
                .map(|op| MapOpRecord {
                    map: op.map,
                    kind: op.kind,
                    key: mig.import(op.key, &local.pool, pool),
                    value: op.value.map(|v| mig.import(v, &local.pool, pool)),
                    havoc_value_var: op
                        .havoc_value_var
                        .map(|v| mig.mapped_var(v).expect("havoc var imported")),
                    havoc_flag_var: op
                        .havoc_flag_var
                        .map(|v| mig.mapped_var(v).expect("havoc var imported")),
                })
                .collect(),
        })
        .collect();
    let stage = &pipeline.stages[k];
    StageSummary {
        name: stage.element.name.clone(),
        input,
        segments,
        loop_iters: match &stage.element.kind {
            ElementKind::Straight(_) => None,
            ElementKind::Loop { max_iters, .. } => Some(*max_iters),
        },
        states: local.states,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elements::pipelines::to_pipeline;
    use symexec::SegOutcome;

    fn cfg() -> SymConfig {
        SymConfig {
            max_pkt_bytes: 48,
            ..Default::default()
        }
    }

    #[test]
    fn summarizes_classifier() {
        let p = to_pipeline("t", vec![elements::classifier::classifier()]);
        let mut pool = TermPool::new();
        let s = summarize_pipeline(&mut pool, &p, &cfg(), MapMode::Abstract).expect("ok");
        assert_eq!(s.stages.len(), 1);
        // Segments: drop (short), emit 0 (IPv4), emit 1 (ARP), emit 2.
        let segs = &s.stages[0].segments;
        assert_eq!(segs.len(), 4);
        assert!(
            !segs.iter().any(|g| g.outcome.is_crash()),
            "classifier guards its load: no feasible crash segment"
        );
    }

    #[test]
    fn dec_ttl_has_crash_suspect_in_isolation() {
        let p = to_pipeline("t", vec![elements::dec_ttl::dec_ttl()]);
        let mut pool = TermPool::new();
        let s = summarize_pipeline(&mut pool, &p, &cfg(), MapMode::Abstract).expect("ok");
        let crashes = s.stages[0]
            .segments
            .iter()
            .filter(|g| g.outcome.is_crash())
            .count();
        assert!(crashes >= 1, "unguarded TTL load is a suspect");
    }

    #[test]
    fn loop_body_summarized_once() {
        let p = to_pipeline("t", vec![elements::ip_options::ip_options(3, None)]);
        let mut pool = TermPool::new();
        let s = summarize_pipeline(&mut pool, &p, &cfg(), MapMode::Abstract).expect("ok");
        // max_options = 3 ⇒ composition bound 3 + 2.
        assert_eq!(s.stages[0].loop_iters, Some(5));
        // The body emits PORT_CONTINUE on option-advance segments.
        assert!(s.stages[0]
            .segments
            .iter()
            .any(|g| g.outcome == SegOutcome::Emit(dpir::PORT_CONTINUE)));
    }

    #[test]
    fn tables_mode_keeps_lookup_single_branch() {
        let routes = vec![(0x0A000000u32, 8u32, 0u32), (0x0B000000, 8, 1)];
        let p = to_pipeline("t", vec![elements::ip_lookup::ip_lookup(2, routes)]);
        let mut pool = TermPool::new();
        let abs = summarize_pipeline(&mut pool, &p, &cfg(), MapMode::Abstract).expect("ok");
        let mut pool2 = TermPool::new();
        let tab = summarize_pipeline(&mut pool2, &p, &cfg(), MapMode::Tables).expect("ok");
        // Table mode must not multiply states per entry (ITE chain).
        assert!(tab.total_states <= abs.total_states + 2);
    }
}
