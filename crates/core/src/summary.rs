//! Verification step 1: per-element segment summaries, behind a
//! content-addressed store.
//!
//! The paper's scalability argument (§4, Fig. 4) rests on summaries
//! being *reusable*: step 1 runs once per element, step 2 once per
//! composition. The [`SummaryStore`] makes that reuse first-class and
//! fleet-wide: every stage summary is keyed by a structural hash of
//! `(element program, map mode, table-config bytes, sym config)`
//! ([`SummaryKey`]) and stored **pool-independent** — the summary
//! lives in its own private [`TermPool`] and is *rebased* into a
//! requesting session's pool through [`bvsolve::Migrator`]. A hundred
//! pipeline variants sharing the same handful of elements (different
//! wiring, different table contents) then pay for symbolic execution
//! once per distinct element, not once per variant.
//!
//! Soundness of the addressing rests on the executor's determinism
//! guarantee (`symexec::execute` module docs): identical inputs
//! reproduce the summary exactly, so replaying a cache hit by
//! migration is indistinguishable — variable numbering, term
//! structure, verdicts, counterexample bytes — from re-executing.
//! Both [`summarize_pipeline`] and [`summarize_pipeline_par`] are thin
//! wrappers over the store-consulting driver (with a throwaway store),
//! so cached and uncached runs build byte-identical master pools by
//! construction.

use bvsolve::{Migrator, TermPool};
use dataplane::{Element, ElementKind, Pipeline};
use dpir::fingerprint128;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use symexec::{
    execute, AbstractMapModel, MapBranch, MapModel, MapOpRecord, Segment, SymConfig, SymError,
    SymInput, TableMapModel,
};

/// How static maps are modeled during step 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapMode {
    /// Abstract everything (crash-freedom / bounded-execution with
    /// arbitrary configuration — paper §4).
    Abstract,
    /// Use configured contents for static maps, summarized as ITE
    /// chains (filtering with a specific configuration); private maps
    /// stay abstract.
    Tables,
}

/// Step-1 result for one pipeline stage.
#[derive(Debug)]
pub struct StageSummary {
    /// Element name.
    pub name: String,
    /// The element's own symbolic input (substitution points).
    pub input: SymInput,
    /// All feasible segments.
    pub segments: Vec<Segment>,
    /// `Some(max_iters)` for loop elements.
    pub loop_iters: Option<u32>,
    /// States explored during step 1 (Fig. 4(c) "#states").
    pub states: usize,
}

/// Step-1 result for the whole pipeline.
#[derive(Debug)]
pub struct PipelineSummaries {
    /// The pipeline-level symbolic input (the packet as received).
    pub input: SymInput,
    /// Per-stage summaries, in stage order.
    pub stages: Vec<StageSummary>,
    /// Total states across all stages.
    pub total_states: usize,
    /// Stages served from the [`SummaryStore`] without re-execution.
    pub summary_hits: usize,
    /// Stages that had to be symbolically executed (then cached).
    pub summary_misses: usize,
}

/// A per-stage map model: configured static maps become ITE-chain
/// tables (in [`MapMode::Tables`]), everything else havocs.
struct StageMapModel {
    tables: TableMapModel,
    table_ids: Vec<u32>,
    fallback: AbstractMapModel,
}

impl StageMapModel {
    fn new(element: &Element, mode: MapMode) -> Self {
        let mut tables = TableMapModel::new();
        let mut table_ids = Vec::new();
        if mode == MapMode::Tables {
            for (map, cfg) in &element.tables {
                tables.set_table(*map, cfg.as_pairs().to_vec());
                table_ids.push(map.0);
            }
        }
        StageMapModel {
            tables,
            table_ids,
            fallback: AbstractMapModel::new(),
        }
    }

    fn is_table(&self, map: dpir::MapId) -> bool {
        self.table_ids.contains(&map.0)
    }
}

impl MapModel for StageMapModel {
    fn read(
        &mut self,
        pool: &mut TermPool,
        map: dpir::MapId,
        decl: &dpir::MapDecl,
        key: bvsolve::TermId,
    ) -> Vec<MapBranch> {
        if self.is_table(map) {
            self.tables.read(pool, map, decl, key)
        } else {
            self.fallback.read(pool, map, decl, key)
        }
    }

    fn write(
        &mut self,
        pool: &mut TermPool,
        map: dpir::MapId,
        decl: &dpir::MapDecl,
        key: bvsolve::TermId,
        value: bvsolve::TermId,
    ) -> Vec<MapBranch> {
        if self.is_table(map) {
            self.tables.write(pool, map, decl, key, value)
        } else {
            self.fallback.write(pool, map, decl, key, value)
        }
    }

    fn test(
        &mut self,
        pool: &mut TermPool,
        map: dpir::MapId,
        decl: &dpir::MapDecl,
        key: bvsolve::TermId,
    ) -> Vec<MapBranch> {
        if self.is_table(map) {
            self.tables.test(pool, map, decl, key)
        } else {
            self.fallback.test(pool, map, decl, key)
        }
    }
}

/// The content address of one stage summary: everything the symbolic
/// execution of a stage depends on, structurally hashed.
///
/// Two stages with equal keys produce byte-identical summaries (the
/// executor is deterministic), so the store may serve either one's
/// cached result for the other. In [`MapMode::Abstract`] the table
/// configuration is **excluded** — abstract execution never consults
/// it — which is what lets config-only fleet variants share all their
/// abstract-mode step-1 work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SummaryKey {
    /// Structural fingerprint of (element display name, DPIR program).
    pub program: u128,
    /// Map-model mode the stage was executed under.
    pub mode: MapMode,
    /// Fingerprint of the table contents consulted in
    /// [`MapMode::Tables`] (exactly the `as_pairs()` contents fed to
    /// the ITE-chain model, per map id); `0` in [`MapMode::Abstract`].
    /// 128-bit like `program`: the table bytes are precisely what
    /// varies across a fleet's config variants, so this field carries
    /// the collision load.
    pub tables: u128,
    /// Fingerprint of the [`SymConfig`] fields that shape execution.
    pub sym: u128,
}

impl SummaryKey {
    /// The content address of `element` executed under `(mode, cfg)`.
    pub fn of(element: &Element, mode: MapMode, cfg: &SymConfig) -> Self {
        let program = fingerprint128(&(element.name.as_str(), element.program()));
        let tables = match mode {
            MapMode::Abstract => 0,
            MapMode::Tables => {
                // Hash what execution actually consumes
                // (`StageMapModel::new` feeds the canonical pair view
                // to the ITE-chain model), so configs with equal
                // semantics share a summary. The per-table pair-view
                // fingerprint is cached and maintained incrementally
                // by `TableConfig`, so keying is O(#maps), not
                // O(table) — the hot path of config-update streams.
                let consumed: Vec<(u32, u128, usize)> = element
                    .tables
                    .iter()
                    .map(|(map, tc)| (map.0, tc.pairs_fingerprint(), tc.as_pairs().len()))
                    .collect();
                fingerprint128(&consumed)
            }
        };
        // Exhaustive destructuring (no `..`): adding a SymConfig field
        // fails to compile here until it is added to the key — a field
        // silently missing from the address would serve summaries
        // executed under a different configuration.
        let SymConfig {
            max_pkt_bytes,
            min_pkt_len,
            max_states,
            max_instrs_per_path,
            exact_forks,
            fork_conflict_budget,
            fork_on_symbolic_offset,
        } = *cfg;
        let sym = fingerprint128(&(
            max_pkt_bytes,
            min_pkt_len,
            max_states,
            max_instrs_per_path,
            exact_forks,
            fork_conflict_budget,
            fork_on_symbolic_offset,
        ));
        SummaryKey {
            program,
            mode,
            tables,
            sym,
        }
    }
}

/// A pool-independent stage summary: the execution result in its own
/// private [`TermPool`], ready to be rebased into any session pool.
#[derive(Debug)]
pub struct StoredStage {
    pub(crate) pool: TermPool,
    pub(crate) input: SymInput,
    pub(crate) segments: Vec<Segment>,
    pub(crate) states: usize,
}

impl StoredStage {
    /// Approximate resident size: the private pool dominates (every
    /// entry owns a compacted [`TermPool`]), so the estimate prices
    /// terms and variables at their in-memory struct sizes and adds
    /// the segment skeletons. Used only for the store's byte budget —
    /// relative accuracy across entries is what matters, not absolute.
    fn approx_bytes(&self) -> usize {
        const TERM_BYTES: usize = 48; // op + operands + width + hash-index share
        const VAR_BYTES: usize = 32; // width + creation metadata
        self.pool.len() * TERM_BYTES
            + self.pool.num_vars() * VAR_BYTES
            + self.segments.len() * std::mem::size_of::<Segment>()
            + std::mem::size_of::<SymInput>()
    }
}

#[derive(Debug)]
struct StoreEntry {
    stage: Arc<StoredStage>,
    bytes: usize,
    /// Logical access clock at last hit or insertion; smallest = LRU.
    last_used: u64,
}

#[derive(Debug, Default)]
struct StoreInner {
    entries: HashMap<SummaryKey, StoreEntry>,
    /// Sum of `StoreEntry::bytes` over `entries`.
    bytes: usize,
    /// Monotonic access counter backing the LRU order.
    clock: u64,
}

/// A content-addressed, thread-safe cache of stage summaries.
///
/// Sessions consult the store during step 1: a hit rebases the cached
/// pool-independent summary into the session's [`TermPool`] via
/// [`bvsolve::Migrator`]; a miss executes the stage into a fresh
/// private pool, caches it, then rebases the same way. Because hits
/// and misses take the identical rebase path and execution is
/// deterministic, a session's master pool — and therefore every
/// verdict, counterexample byte and composed-path count downstream —
/// is independent of the store's prior contents.
///
/// Share one store across [`crate::Verifier`] sessions (or a whole
/// [`crate::fleet::Fleet`]) with `Arc<SummaryStore>`; the Abstract and
/// Tables caches both live here, keyed by [`SummaryKey::mode`].
///
/// ## Bounding
///
/// By default the store is unbounded. Long-lived stores sweeping many
/// *distinct* Tables-mode configurations (fleet sweeps, config-update
/// streams) grow linearly with configurations seen — each entry owns a
/// full compacted [`TermPool`]. [`SummaryStore::bounded`] caps the
/// store by entry count and/or approximate resident bytes; when a cap
/// is exceeded after an insertion, least-recently-*used* entries (hits
/// refresh recency, not just inserts) are evicted until the store fits
/// again. Eviction is never a correctness concern — a cold key simply
/// re-executes on next request — only cache temperature, which
/// [`SummaryStore::evictions`] makes observable.
///
/// ## Persistence
///
/// [`SummaryStore::persistent`] backs the store with a directory of
/// content-addressed files (one per [`SummaryKey`], a versioned binary
/// encoding of the pool-independent summary): a memory miss consults
/// the directory before executing, and every executed summary is
/// written back atomically (temp file + rename), so step-1 warmth
/// survives process restarts and is shared across concurrent
/// processes. A disk load takes the identical decode → [`Migrator`]
/// normalization path as an in-memory hit, so persisted summaries are
/// byte-identical to freshly built ones; files that are truncated,
/// bit-flipped, version-bumped or otherwise unreadable are logged and
/// treated as misses — never as answers. LRU eviction and
/// [`SummaryStore::clear`] drop memory residency only; the files
/// remain and simply re-load on next use.
#[derive(Debug, Default)]
pub struct SummaryStore {
    inner: Mutex<StoreInner>,
    max_entries: Option<usize>,
    max_bytes: Option<usize>,
    /// Directory backing the store on disk, if persistent.
    disk: Option<std::path::PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    store_loads: AtomicU64,
    store_writes: AtomicU64,
    load_bytes: AtomicU64,
}

impl SummaryStore {
    /// An empty, unbounded store.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store behind an [`Arc`], ready to share.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// An empty store with LRU capacity bounds: at most `max_entries`
    /// summaries (`None` = unbounded) occupying at most `max_bytes`
    /// approximate resident bytes (`None` = unbounded). The newest
    /// entry always survives eviction, so a single summary larger than
    /// `max_bytes` still caches (and evicts everything else).
    pub fn bounded(max_entries: Option<usize>, max_bytes: Option<usize>) -> Self {
        SummaryStore {
            max_entries,
            max_bytes,
            ..Self::default()
        }
    }

    /// An unbounded store persisted under `dir` (created if absent):
    /// misses load through the directory's content-addressed files and
    /// executed summaries are written back, so warmth survives the
    /// process. See the type-level *Persistence* section.
    pub fn persistent(dir: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        Self::persistent_bounded(dir, None, None)
    }

    /// A persistent store with the [`SummaryStore::bounded`] LRU caps
    /// on *memory* residency (the backing directory is never pruned —
    /// evicted entries re-load from disk instead of re-executing).
    pub fn persistent_bounded(
        dir: impl Into<std::path::PathBuf>,
        max_entries: Option<usize>,
        max_bytes: Option<usize>,
    ) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(SummaryStore {
            disk: Some(dir),
            max_entries,
            max_bytes,
            ..Self::default()
        })
    }

    /// The backing directory of a [`SummaryStore::persistent`] store.
    pub fn store_path(&self) -> Option<&std::path::Path> {
        self.disk.as_deref()
    }

    /// Distinct `(element, mode, tables, cfg)` summaries held.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("summary store poisoned")
            .entries
            .len()
    }

    /// Whether the store holds no summaries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes across all held summaries (the
    /// quantity bounded by `max_bytes` in [`SummaryStore::bounded`]).
    pub fn approx_bytes(&self) -> usize {
        self.inner.lock().expect("summary store poisoned").bytes
    }

    /// Lifetime count of stage requests served from cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime count of stage requests that had to execute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lifetime count of summaries evicted to satisfy the capacity
    /// bounds. Nonzero means the working set exceeds the configured
    /// capacity and some re-execution is being paid.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Lifetime count of summaries served from the backing directory
    /// (each also counts as a [`SummaryStore::hits`] entry: a disk
    /// load is a cache hit that skipped execution). Always `0` for
    /// in-memory stores.
    pub fn store_loads(&self) -> u64 {
        self.store_loads.load(Ordering::Relaxed)
    }

    /// Lifetime count of executed summaries written back to the
    /// backing directory. Always `0` for in-memory stores.
    pub fn store_writes(&self) -> u64 {
        self.store_writes.load(Ordering::Relaxed)
    }

    /// Lifetime bytes read from the backing directory by successful
    /// loads.
    pub fn load_bytes(&self) -> u64 {
        self.load_bytes.load(Ordering::Relaxed)
    }

    /// Drops every cached summary (the hit/miss/eviction counters are
    /// kept). With a [`SummaryStore::bounded`] store this is rarely
    /// needed — the LRU bound holds residency steady on its own — but
    /// it remains the way to force a fully cold baseline (ablations)
    /// or to release everything between unrelated sweeps at once.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("summary store poisoned");
        inner.entries.clear();
        inner.bytes = 0;
    }

    /// Evicts least-recently-used entries until both bounds hold
    /// again, never removing the newest entry. Caller holds the lock.
    fn enforce_bounds(&self, inner: &mut StoreInner) {
        let over = |inner: &StoreInner| {
            self.max_entries.is_some_and(|m| inner.entries.len() > m)
                || self.max_bytes.is_some_and(|m| inner.bytes > m)
        };
        while inner.entries.len() > 1 && over(inner) {
            let lru = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty");
            let evicted = inner.entries.remove(&lru).expect("present");
            inner.bytes -= evicted.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Fetches the summary for `element` under `(mode, cfg)`,
    /// executing and caching it on a miss. Returns whether this was a
    /// hit. Execution happens outside the store lock; if two threads
    /// race on the same key both execute (identically — the executor
    /// is deterministic) and the first insert wins.
    pub(crate) fn stage(
        &self,
        element: &Element,
        mode: MapMode,
        cfg: &SymConfig,
    ) -> Result<(Arc<StoredStage>, bool), SymError> {
        let key = SummaryKey::of(element, mode, cfg);
        {
            let mut inner = self.inner.lock().expect("summary store poisoned");
            let inner = &mut *inner;
            if let Some(found) = inner.entries.get_mut(&key) {
                inner.clock += 1;
                found.last_used = inner.clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((Arc::clone(&found.stage), true));
            }
        }
        // Memory miss: consult the backing directory before paying for
        // execution. A successful load is a *hit* — the stage was not
        // re-executed — and any decode failure (missing, truncated,
        // corrupt, wrong version) falls through to execution, which
        // overwrites the bad file on write-back.
        if let Some(dir) = &self.disk {
            if let Some((stage, nbytes)) = crate::persist::load_summary(dir, &key) {
                self.store_loads.fetch_add(1, Ordering::Relaxed);
                self.load_bytes.fetch_add(nbytes, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                let stored = Arc::new(stage);
                let mut inner = self.inner.lock().expect("summary store poisoned");
                let inner = &mut *inner;
                inner.clock += 1;
                let clock = inner.clock;
                let out = match inner.entries.entry(key) {
                    // Another thread raced the load/execute: keep it.
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        o.get_mut().last_used = clock;
                        Arc::clone(&o.get().stage)
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        let bytes = stored.approx_bytes();
                        inner.bytes += bytes;
                        Arc::clone(
                            &v.insert(StoreEntry {
                                stage: stored,
                                bytes,
                                last_used: clock,
                            })
                            .stage,
                        )
                    }
                };
                self.enforce_bounds(inner);
                return Ok((out, true));
            }
        }
        let mut exec_pool = TermPool::new();
        let exec_input = SymInput::fresh(&mut exec_pool, cfg, &element.name);
        let mut model = StageMapModel::new(element, mode);
        let report = execute(
            &mut exec_pool,
            element.program(),
            &exec_input,
            &mut model,
            cfg,
        )?;
        // Compact before storing: the execution pool also holds every
        // per-instruction intermediate and infeasible-branch term,
        // which rebasing never reads. Keep all variables (the
        // creation-order numbering contract) but only the terms
        // reachable from the summary.
        let mut pool = TermPool::new();
        let (input, segments) =
            import_summary(&mut pool, &exec_pool, &exec_input, &report.segments);
        let stored = Arc::new(StoredStage {
            pool,
            input,
            segments,
            states: report.states,
        });
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Write-back (outside the lock; atomic temp+rename, so racing
        // writers of the same key are harmless — both write identical
        // bytes and either file is complete).
        if let Some(dir) = &self.disk {
            if crate::persist::save_summary(dir, &key, &stored) {
                self.store_writes.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut inner = self.inner.lock().expect("summary store poisoned");
        let inner = &mut *inner;
        inner.clock += 1;
        let clock = inner.clock;
        let out = match inner.entries.entry(key) {
            // Lost an execution race: keep the winner, refresh recency.
            std::collections::hash_map::Entry::Occupied(mut o) => {
                o.get_mut().last_used = clock;
                Arc::clone(&o.get().stage)
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                let bytes = stored.approx_bytes();
                inner.bytes += bytes;
                Arc::clone(
                    &v.insert(StoreEntry {
                        stage: stored,
                        bytes,
                        last_used: clock,
                    })
                    .stage,
                )
            }
        };
        self.enforce_bounds(inner);
        Ok((out, false))
    }
}

/// Runs step 1 over every stage of `pipeline`, sequentially, with a
/// throwaway store (intra-pipeline sharing only).
///
/// Each element (or loop body, per Condition 1) is executed exactly
/// once with fully unconstrained symbolic input — the per-element work
/// is `m · 2^n`, not `2^(m·n)` (§2.2). Prefer
/// [`summarize_pipeline_with_store`] (or a [`crate::Verifier`] with a
/// shared store) when several pipelines or sessions share elements.
pub fn summarize_pipeline(
    pool: &mut TermPool,
    pipeline: &Pipeline,
    cfg: &SymConfig,
    mode: MapMode,
) -> Result<PipelineSummaries, SymError> {
    summarize_pipeline_with_store(pool, pipeline, cfg, mode, &SummaryStore::new(), 1)
}

/// Runs step 1 over every stage of `pipeline`, one stage per worker
/// across `threads` threads (0 = all available cores), with a
/// throwaway store.
///
/// Identical output to [`summarize_pipeline`] — both drivers fetch
/// pool-independent summaries (executed in private pools) and migrate
/// them into `pool` in stage order, importing every summary variable
/// in creation order, so the master pool's variable numbering — and
/// therefore every downstream model and counterexample — is
/// independent of the thread count.
pub fn summarize_pipeline_par(
    pool: &mut TermPool,
    pipeline: &Pipeline,
    cfg: &SymConfig,
    mode: MapMode,
    threads: usize,
) -> Result<PipelineSummaries, SymError> {
    let threads = effective_threads(threads);
    summarize_pipeline_with_store(pool, pipeline, cfg, mode, &SummaryStore::new(), threads)
}

/// The step-1 driver: fetches every stage summary from `store`
/// (executing misses), then rebases them into `pool` in stage order.
///
/// `threads` pins the worker count for the fetch phase: `1` fetches
/// in-place, `0` uses all available cores (the crate-wide
/// convention). The rebase phase is always sequential in stage order,
/// which is what makes the master pool deterministic across thread
/// counts and store states.
pub fn summarize_pipeline_with_store(
    pool: &mut TermPool,
    pipeline: &Pipeline,
    cfg: &SymConfig,
    mode: MapMode,
    store: &SummaryStore,
    threads: usize,
) -> Result<PipelineSummaries, SymError> {
    let input = SymInput::fresh(pool, cfg, "in");
    let n = pipeline.stages.len();
    let threads = effective_threads(threads).clamp(1, n.max(1));
    let fetched = run_indexed(n, threads, |k| {
        store.stage(&pipeline.stages[k].element, mode, cfg)
    });

    let mut stages = Vec::with_capacity(n);
    let mut total_states = 0usize;
    let mut summary_hits = 0usize;
    let mut summary_misses = 0usize;
    for (k, res) in fetched.into_iter().enumerate() {
        let (stored, hit) = res?;
        if hit {
            summary_hits += 1;
        } else {
            summary_misses += 1;
        }
        total_states += stored.states;
        stages.push(rebase_stage(pool, &stored, &pipeline.stages[k].element));
    }
    Ok(PipelineSummaries {
        input,
        stages,
        total_states,
        summary_hits,
        summary_misses,
    })
}

/// Resolves a thread-count knob: `0` means all available cores (the
/// single policy behind every `threads` parameter in this crate).
pub(crate) fn effective_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Runs `n` independent indexed tasks across `threads` workers
/// (`<= 1` runs them in place) and collects the results in index
/// order — the one worker-pool scaffold behind the step-1 fetch phase
/// and [`crate::fleet::Fleet::run`].
pub(crate) fn run_indexed<T: Send>(
    n: usize,
    threads: usize,
    task: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return (0..n).map(task).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *slots[i].lock().expect("task slot poisoned") = Some(task(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("task slot poisoned")
                .expect("worker pool ran every task")
        })
        .collect()
}

/// Rebases a pool-independent stored summary into the master pool.
pub(crate) fn rebase_stage(
    pool: &mut TermPool,
    stored: &StoredStage,
    element: &Element,
) -> StageSummary {
    let (input, segments) = import_summary(pool, &stored.pool, &stored.input, &stored.segments);
    StageSummary {
        name: element.name.clone(),
        input,
        segments,
        loop_iters: match &element.kind {
            ElementKind::Straight(_) => None,
            ElementKind::Loop { max_iters, .. } => Some(*max_iters),
        },
        states: stored.states,
    }
}

/// Imports a stage summary from `src` into `pool`: all source
/// variables first, in creation order (so the destination numbering
/// matches what executing the stage in place would have produced),
/// then every term reachable from the summary. Used both to compact
/// summaries into their store entry and to rebase entries into
/// session pools — one code path, so a hit reproduces a miss exactly.
pub(crate) fn import_summary(
    pool: &mut TermPool,
    src: &TermPool,
    src_input: &SymInput,
    src_segments: &[Segment],
) -> (SymInput, Vec<Segment>) {
    let mut mig = Migrator::new();
    mig.import_all_vars(src, pool);
    let input = SymInput {
        pkt_bytes: src_input
            .pkt_bytes
            .iter()
            .map(|&t| mig.import(t, src, pool))
            .collect(),
        pkt_len: mig.import(src_input.pkt_len, src, pool),
        meta: src_input
            .meta
            .iter()
            .map(|&t| mig.import(t, src, pool))
            .collect(),
        pkt_byte_vars: src_input
            .pkt_byte_vars
            .iter()
            .map(|&v| mig.mapped_var(v).expect("input var imported"))
            .collect(),
        len_var: mig.mapped_var(src_input.len_var).expect("len var imported"),
        meta_vars: src_input
            .meta_vars
            .iter()
            .map(|&v| mig.mapped_var(v).expect("meta var imported"))
            .collect(),
        base_constraints: src_input
            .base_constraints
            .iter()
            .map(|&t| mig.import(t, src, pool))
            .collect(),
    };
    let segments = src_segments
        .iter()
        .map(|seg| Segment {
            constraint: seg
                .constraint
                .iter()
                .map(|&t| mig.import(t, src, pool))
                .collect(),
            assumed: seg
                .assumed
                .iter()
                .map(|&t| mig.import(t, src, pool))
                .collect(),
            outcome: seg.outcome,
            pkt_out: seg
                .pkt_out
                .iter()
                .map(|&t| mig.import(t, src, pool))
                .collect(),
            len_out: mig.import(seg.len_out, src, pool),
            meta_out: seg
                .meta_out
                .iter()
                .map(|&t| mig.import(t, src, pool))
                .collect(),
            instrs: seg.instrs,
            map_ops: seg
                .map_ops
                .iter()
                .map(|op| MapOpRecord {
                    map: op.map,
                    kind: op.kind,
                    key: mig.import(op.key, src, pool),
                    value: op.value.map(|v| mig.import(v, src, pool)),
                    havoc_value_var: op
                        .havoc_value_var
                        .map(|v| mig.mapped_var(v).expect("havoc var imported")),
                    havoc_flag_var: op
                        .havoc_flag_var
                        .map(|v| mig.mapped_var(v).expect("havoc var imported")),
                })
                .collect(),
        })
        .collect();
    (input, segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataplane::TableConfig;
    use elements::pipelines::to_pipeline;
    use symexec::SegOutcome;

    fn cfg() -> SymConfig {
        SymConfig {
            max_pkt_bytes: 48,
            ..Default::default()
        }
    }

    #[test]
    fn summarizes_classifier() {
        let p = to_pipeline("t", vec![elements::classifier::classifier()]);
        let mut pool = TermPool::new();
        let s = summarize_pipeline(&mut pool, &p, &cfg(), MapMode::Abstract).expect("ok");
        assert_eq!(s.stages.len(), 1);
        // Segments: drop (short), emit 0 (IPv4), emit 1 (ARP), emit 2.
        let segs = &s.stages[0].segments;
        assert_eq!(segs.len(), 4);
        assert!(
            !segs.iter().any(|g| g.outcome.is_crash()),
            "classifier guards its load: no feasible crash segment"
        );
    }

    #[test]
    fn dec_ttl_has_crash_suspect_in_isolation() {
        let p = to_pipeline("t", vec![elements::dec_ttl::dec_ttl()]);
        let mut pool = TermPool::new();
        let s = summarize_pipeline(&mut pool, &p, &cfg(), MapMode::Abstract).expect("ok");
        let crashes = s.stages[0]
            .segments
            .iter()
            .filter(|g| g.outcome.is_crash())
            .count();
        assert!(crashes >= 1, "unguarded TTL load is a suspect");
    }

    #[test]
    fn loop_body_summarized_once() {
        let p = to_pipeline("t", vec![elements::ip_options::ip_options(3, None)]);
        let mut pool = TermPool::new();
        let s = summarize_pipeline(&mut pool, &p, &cfg(), MapMode::Abstract).expect("ok");
        // max_options = 3 ⇒ composition bound 3 + 2.
        assert_eq!(s.stages[0].loop_iters, Some(5));
        // The body emits PORT_CONTINUE on option-advance segments.
        assert!(s.stages[0]
            .segments
            .iter()
            .any(|g| g.outcome == SegOutcome::Emit(dpir::PORT_CONTINUE)));
    }

    #[test]
    fn tables_mode_keeps_lookup_single_branch() {
        let routes = vec![(0x0A000000u32, 8u32, 0u32), (0x0B000000, 8, 1)];
        let p = to_pipeline("t", vec![elements::ip_lookup::ip_lookup(2, routes)]);
        let mut pool = TermPool::new();
        let abs = summarize_pipeline(&mut pool, &p, &cfg(), MapMode::Abstract).expect("ok");
        let mut pool2 = TermPool::new();
        let tab = summarize_pipeline(&mut pool2, &p, &cfg(), MapMode::Tables).expect("ok");
        // Table mode must not multiply states per entry (ITE chain).
        assert!(tab.total_states <= abs.total_states + 2);
    }

    #[test]
    fn store_shares_identical_elements_within_a_pipeline() {
        let p = to_pipeline(
            "t",
            vec![elements::dec_ttl::dec_ttl(), elements::dec_ttl::dec_ttl()],
        );
        let store = SummaryStore::new();
        let mut pool = TermPool::new();
        let s = summarize_pipeline_with_store(&mut pool, &p, &cfg(), MapMode::Abstract, &store, 1)
            .expect("ok");
        assert_eq!(s.summary_misses, 1, "first DecTTL executes");
        assert_eq!(s.summary_hits, 1, "second DecTTL is served from cache");
        assert_eq!(store.len(), 1);
        // The two stages are distinct instantiations: no shared vars.
        assert_ne!(
            s.stages[0].input.pkt_byte_vars, s.stages[1].input.pkt_byte_vars,
            "rebased instances must not alias"
        );
    }

    #[test]
    fn abstract_keys_ignore_table_contents() {
        let mk = |routes: Vec<(u32, u32, u32)>| {
            to_pipeline("t", vec![elements::ip_lookup::ip_lookup(2, routes)]).stages[0]
                .element
                .clone()
        };
        let a = mk(vec![(0x0A000000, 8, 0)]);
        let b = mk(vec![(0x0B000000, 8, 1)]);
        assert_eq!(
            SummaryKey::of(&a, MapMode::Abstract, &cfg()),
            SummaryKey::of(&b, MapMode::Abstract, &cfg()),
            "abstract execution never reads tables"
        );
        assert_ne!(
            SummaryKey::of(&a, MapMode::Tables, &cfg()),
            SummaryKey::of(&b, MapMode::Tables, &cfg()),
            "table contents are part of the Tables-mode address"
        );
    }

    #[test]
    fn sym_config_participates_in_the_key() {
        let e = to_pipeline("t", vec![elements::dec_ttl::dec_ttl()]).stages[0]
            .element
            .clone();
        let small = SymConfig {
            max_pkt_bytes: 32,
            ..Default::default()
        };
        assert_ne!(
            SummaryKey::of(&e, MapMode::Abstract, &cfg()),
            SummaryKey::of(&e, MapMode::Abstract, &small),
            "window size shapes the summary"
        );
    }

    /// The churn contract: a delta moves a stage's Tables-mode key iff
    /// it moves the table's canonical pair view (`as_pairs()` bytes).
    #[test]
    fn tables_key_tracks_exact_delta_pair_view() {
        use dataplane::{TableDelta, TableOp};
        let mut p = to_pipeline(
            "t",
            vec![
                elements::ip_filter::ip_filter(vec![0x0BAD_0001]),
                elements::ip_lookup::ip_lookup(2, vec![(0x0A00_0000, 8, 0)]),
            ],
        );
        let key = |p: &dataplane::Pipeline, i: usize| {
            SummaryKey::of(&p.stages[i].element, MapMode::Tables, &cfg())
        };
        let (k_filter, k_lookup) = (key(&p, 0), key(&p, 1));

        // No-op overwrite (same key, same value): pair view unchanged,
        // key unchanged.
        let eff = TableDelta::new(
            "IPFilter",
            dpir::MapId(0),
            TableOp::ExactInsert(vec![(0x0BAD_0001, 1)]),
        )
        .apply(&mut p)
        .expect("ok");
        assert!(!eff.any_changed());
        assert_eq!(key(&p, 0), k_filter, "no-op insert must not move the key");

        // Fresh insert: pair view changed, key moves — and only on the
        // touched stage (the LPM stage is untouched).
        let eff = TableDelta::new(
            "IPFilter",
            dpir::MapId(0),
            TableOp::ExactInsert(vec![(0x0BAD_0099, 1)]),
        )
        .apply(&mut p)
        .expect("ok");
        assert!(eff.any_changed());
        let k_after = key(&p, 0);
        assert_ne!(k_after, k_filter, "fresh entry must move the key");
        assert_eq!(key(&p, 1), k_lookup, "untouched stage key is stable");

        // Removing it restores the exact pair bytes — and the key.
        TableDelta::new(
            "IPFilter",
            dpir::MapId(0),
            TableOp::ExactRemove(vec![0x0BAD_0099]),
        )
        .apply(&mut p)
        .expect("ok");
        assert_eq!(key(&p, 0), k_filter, "same pair bytes ⇒ same key");
    }

    #[test]
    fn tables_key_tracks_lpm_delta_pair_view() {
        use dataplane::{TableConfig, TableDelta, TableOp};
        let mut p = to_pipeline(
            "t",
            vec![elements::ip_lookup::ip_lookup(2, vec![(0x0A00_0000, 8, 0)])],
        );
        let key =
            |p: &dataplane::Pipeline| SummaryKey::of(&p.stages[0].element, MapMode::Tables, &cfg());
        let k0 = key(&p);

        // Removing an absent route is a no-op: key unchanged.
        let eff = TableDelta::new(
            "IPlookup",
            dpir::MapId(0),
            TableOp::LpmRemove(vec![(0x0B00_0000, 16)]),
        )
        .apply(&mut p)
        .expect("ok");
        assert!(!eff.any_changed());
        assert_eq!(key(&p), k0, "absent-route remove must not move the key");

        // A fresh route moves the key.
        let eff = TableDelta::new(
            "IPlookup",
            dpir::MapId(0),
            TableOp::LpmInsert(vec![(0x0B00_0000, 16, 1)]),
        )
        .apply(&mut p)
        .expect("ok");
        assert!(eff.any_changed());
        let k1 = key(&p);
        assert_ne!(k1, k0);

        // Replacing the table with a copy of its current contents is a
        // no-op replace: same pair bytes, same key.
        let replica = p.stages[0].element.tables[0].1.clone();
        let eff = TableDelta::new("IPlookup", dpir::MapId(0), TableOp::Replace(replica))
            .apply(&mut p)
            .expect("ok");
        assert!(!eff.any_changed());
        assert_eq!(key(&p), k1, "no-op replace must not move the key");

        // Replacing with different contents moves it.
        let eff = TableDelta::new(
            "IPlookup",
            dpir::MapId(0),
            TableOp::Replace(TableConfig::lpm(vec![(0x0C00_0000, 8, 3)])),
        )
        .apply(&mut p)
        .expect("ok");
        assert!(eff.any_changed());
        assert_ne!(key(&p), k1);
    }

    #[test]
    fn bounded_store_evicts_least_recently_used() {
        let a = to_pipeline("t", vec![elements::dec_ttl::dec_ttl()]).stages[0]
            .element
            .clone();
        let b = to_pipeline("t", vec![elements::classifier::classifier()]).stages[0]
            .element
            .clone();
        let c = to_pipeline("t", vec![elements::check_ip_header::check_ip_header(false)]).stages[0]
            .element
            .clone();
        let store = SummaryStore::bounded(Some(2), None);
        store.stage(&a, MapMode::Abstract, &cfg()).expect("ok");
        store.stage(&b, MapMode::Abstract, &cfg()).expect("ok");
        assert_eq!(store.len(), 2);
        assert_eq!(store.evictions(), 0);
        // Touch `a` so `b` becomes the LRU entry, then overflow.
        let (_, hit) = store.stage(&a, MapMode::Abstract, &cfg()).expect("ok");
        assert!(hit);
        store.stage(&c, MapMode::Abstract, &cfg()).expect("ok");
        assert_eq!(store.len(), 2);
        assert_eq!(store.evictions(), 1);
        let (_, hit_a) = store.stage(&a, MapMode::Abstract, &cfg()).expect("ok");
        assert!(hit_a, "recently-used entry survived");
        let (_, hit_b) = store.stage(&b, MapMode::Abstract, &cfg()).expect("ok");
        assert!(!hit_b, "LRU entry was evicted");
    }

    #[test]
    fn bounded_store_enforces_byte_budget() {
        let a = to_pipeline("t", vec![elements::dec_ttl::dec_ttl()]).stages[0]
            .element
            .clone();
        let b = to_pipeline("t", vec![elements::classifier::classifier()]).stages[0]
            .element
            .clone();
        // A budget of one byte forces every insertion to evict its
        // predecessor — but the newest entry always survives.
        let store = SummaryStore::bounded(None, Some(1));
        store.stage(&a, MapMode::Abstract, &cfg()).expect("ok");
        assert_eq!(store.len(), 1, "single oversized entry still caches");
        assert!(store.approx_bytes() > 1);
        store.stage(&b, MapMode::Abstract, &cfg()).expect("ok");
        assert_eq!(store.len(), 1);
        assert_eq!(store.evictions(), 1);
        store.clear();
        assert_eq!(store.approx_bytes(), 0);
        assert_eq!(store.evictions(), 1, "clear keeps lifetime counters");
    }

    #[test]
    fn unbounded_store_never_evicts() {
        let store = SummaryStore::new();
        for e in [
            elements::dec_ttl::dec_ttl(),
            elements::classifier::classifier(),
            elements::check_ip_header::check_ip_header(false),
        ] {
            store.stage(&e, MapMode::Abstract, &cfg()).expect("ok");
        }
        assert_eq!(store.len(), 3);
        assert_eq!(store.evictions(), 0);
    }

    #[test]
    fn lpm_and_equivalent_exact_share_a_tables_key() {
        let mut a = elements::dec_ttl::dec_ttl();
        a.tables
            .push((dpir::MapId(0), TableConfig::lpm(vec![(10, 8, 7)])));
        let mut b = elements::dec_ttl::dec_ttl();
        b.tables
            .push((dpir::MapId(0), TableConfig::exact(vec![(10, 7)])));
        assert_eq!(
            SummaryKey::of(&a, MapMode::Tables, &cfg()),
            SummaryKey::of(&b, MapMode::Tables, &cfg()),
            "the key hashes what execution consumes (as_pairs)"
        );
    }
}
