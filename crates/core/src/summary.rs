//! Verification step 1: per-element segment summaries, behind a
//! content-addressed store.
//!
//! The paper's scalability argument (§4, Fig. 4) rests on summaries
//! being *reusable*: step 1 runs once per element, step 2 once per
//! composition. The [`SummaryStore`] makes that reuse first-class and
//! fleet-wide: every stage summary is keyed by a structural hash of
//! `(element program, map mode, table-config bytes, sym config)`
//! ([`SummaryKey`]) and stored **pool-independent** — the summary
//! lives in its own private [`TermPool`] and is *rebased* into a
//! requesting session's pool through [`bvsolve::Migrator`]. A hundred
//! pipeline variants sharing the same handful of elements (different
//! wiring, different table contents) then pay for symbolic execution
//! once per distinct element, not once per variant.
//!
//! Soundness of the addressing rests on the executor's determinism
//! guarantee (`symexec::execute` module docs): identical inputs
//! reproduce the summary exactly, so replaying a cache hit by
//! migration is indistinguishable — variable numbering, term
//! structure, verdicts, counterexample bytes — from re-executing.
//! Both [`summarize_pipeline`] and [`summarize_pipeline_par`] are thin
//! wrappers over the store-consulting driver (with a throwaway store),
//! so cached and uncached runs build byte-identical master pools by
//! construction.

use bvsolve::{Migrator, TermPool};
use dataplane::{Element, ElementKind, Pipeline};
use dpir::fingerprint128;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use symexec::{
    execute, AbstractMapModel, MapBranch, MapModel, MapOpRecord, Segment, SymConfig, SymError,
    SymInput, TableMapModel,
};

/// How static maps are modeled during step 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapMode {
    /// Abstract everything (crash-freedom / bounded-execution with
    /// arbitrary configuration — paper §4).
    Abstract,
    /// Use configured contents for static maps, summarized as ITE
    /// chains (filtering with a specific configuration); private maps
    /// stay abstract.
    Tables,
}

/// Step-1 result for one pipeline stage.
#[derive(Debug)]
pub struct StageSummary {
    /// Element name.
    pub name: String,
    /// The element's own symbolic input (substitution points).
    pub input: SymInput,
    /// All feasible segments.
    pub segments: Vec<Segment>,
    /// `Some(max_iters)` for loop elements.
    pub loop_iters: Option<u32>,
    /// States explored during step 1 (Fig. 4(c) "#states").
    pub states: usize,
}

/// Step-1 result for the whole pipeline.
#[derive(Debug)]
pub struct PipelineSummaries {
    /// The pipeline-level symbolic input (the packet as received).
    pub input: SymInput,
    /// Per-stage summaries, in stage order.
    pub stages: Vec<StageSummary>,
    /// Total states across all stages.
    pub total_states: usize,
    /// Stages served from the [`SummaryStore`] without re-execution.
    pub summary_hits: usize,
    /// Stages that had to be symbolically executed (then cached).
    pub summary_misses: usize,
}

/// A per-stage map model: configured static maps become ITE-chain
/// tables (in [`MapMode::Tables`]), everything else havocs.
struct StageMapModel {
    tables: TableMapModel,
    table_ids: Vec<u32>,
    fallback: AbstractMapModel,
}

impl StageMapModel {
    fn new(element: &Element, mode: MapMode) -> Self {
        let mut tables = TableMapModel::new();
        let mut table_ids = Vec::new();
        if mode == MapMode::Tables {
            for (map, cfg) in &element.tables {
                tables.set_table(*map, cfg.as_pairs());
                table_ids.push(map.0);
            }
        }
        StageMapModel {
            tables,
            table_ids,
            fallback: AbstractMapModel::new(),
        }
    }

    fn is_table(&self, map: dpir::MapId) -> bool {
        self.table_ids.contains(&map.0)
    }
}

impl MapModel for StageMapModel {
    fn read(
        &mut self,
        pool: &mut TermPool,
        map: dpir::MapId,
        decl: &dpir::MapDecl,
        key: bvsolve::TermId,
    ) -> Vec<MapBranch> {
        if self.is_table(map) {
            self.tables.read(pool, map, decl, key)
        } else {
            self.fallback.read(pool, map, decl, key)
        }
    }

    fn write(
        &mut self,
        pool: &mut TermPool,
        map: dpir::MapId,
        decl: &dpir::MapDecl,
        key: bvsolve::TermId,
        value: bvsolve::TermId,
    ) -> Vec<MapBranch> {
        if self.is_table(map) {
            self.tables.write(pool, map, decl, key, value)
        } else {
            self.fallback.write(pool, map, decl, key, value)
        }
    }

    fn test(
        &mut self,
        pool: &mut TermPool,
        map: dpir::MapId,
        decl: &dpir::MapDecl,
        key: bvsolve::TermId,
    ) -> Vec<MapBranch> {
        if self.is_table(map) {
            self.tables.test(pool, map, decl, key)
        } else {
            self.fallback.test(pool, map, decl, key)
        }
    }
}

/// The content address of one stage summary: everything the symbolic
/// execution of a stage depends on, structurally hashed.
///
/// Two stages with equal keys produce byte-identical summaries (the
/// executor is deterministic), so the store may serve either one's
/// cached result for the other. In [`MapMode::Abstract`] the table
/// configuration is **excluded** — abstract execution never consults
/// it — which is what lets config-only fleet variants share all their
/// abstract-mode step-1 work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SummaryKey {
    /// Structural fingerprint of (element display name, DPIR program).
    pub program: u128,
    /// Map-model mode the stage was executed under.
    pub mode: MapMode,
    /// Fingerprint of the table contents consulted in
    /// [`MapMode::Tables`] (exactly the `as_pairs()` contents fed to
    /// the ITE-chain model, per map id); `0` in [`MapMode::Abstract`].
    /// 128-bit like `program`: the table bytes are precisely what
    /// varies across a fleet's config variants, so this field carries
    /// the collision load.
    pub tables: u128,
    /// Fingerprint of the [`SymConfig`] fields that shape execution.
    pub sym: u128,
}

impl SummaryKey {
    /// The content address of `element` executed under `(mode, cfg)`.
    pub fn of(element: &Element, mode: MapMode, cfg: &SymConfig) -> Self {
        let program = fingerprint128(&(element.name.as_str(), element.program()));
        let tables = match mode {
            MapMode::Abstract => 0,
            MapMode::Tables => {
                // Hash what execution actually consumes
                // (`StageMapModel::new` flattens LPM to pairs), so
                // configs with equal semantics share a summary.
                let consumed: Vec<(u32, Vec<(u64, u64)>)> = element
                    .tables
                    .iter()
                    .map(|(map, tc)| (map.0, tc.as_pairs()))
                    .collect();
                fingerprint128(&consumed)
            }
        };
        // Exhaustive destructuring (no `..`): adding a SymConfig field
        // fails to compile here until it is added to the key — a field
        // silently missing from the address would serve summaries
        // executed under a different configuration.
        let SymConfig {
            max_pkt_bytes,
            min_pkt_len,
            max_states,
            max_instrs_per_path,
            exact_forks,
            fork_conflict_budget,
            fork_on_symbolic_offset,
        } = *cfg;
        let sym = fingerprint128(&(
            max_pkt_bytes,
            min_pkt_len,
            max_states,
            max_instrs_per_path,
            exact_forks,
            fork_conflict_budget,
            fork_on_symbolic_offset,
        ));
        SummaryKey {
            program,
            mode,
            tables,
            sym,
        }
    }
}

/// A pool-independent stage summary: the execution result in its own
/// private [`TermPool`], ready to be rebased into any session pool.
#[derive(Debug)]
pub struct StoredStage {
    pool: TermPool,
    input: SymInput,
    segments: Vec<Segment>,
    states: usize,
}

/// A content-addressed, thread-safe cache of stage summaries.
///
/// Sessions consult the store during step 1: a hit rebases the cached
/// pool-independent summary into the session's [`TermPool`] via
/// [`bvsolve::Migrator`]; a miss executes the stage into a fresh
/// private pool, caches it, then rebases the same way. Because hits
/// and misses take the identical rebase path and execution is
/// deterministic, a session's master pool — and therefore every
/// verdict, counterexample byte and composed-path count downstream —
/// is independent of the store's prior contents.
///
/// Share one store across [`crate::Verifier`] sessions (or a whole
/// [`crate::fleet::Fleet`]) with `Arc<SummaryStore>`; the Abstract and
/// Tables caches both live here, keyed by [`SummaryKey::mode`].
#[derive(Debug, Default)]
pub struct SummaryStore {
    entries: Mutex<HashMap<SummaryKey, Arc<StoredStage>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SummaryStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store behind an [`Arc`], ready to share.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Distinct `(element, mode, tables, cfg)` summaries held.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("summary store poisoned").len()
    }

    /// Whether the store holds no summaries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime count of stage requests served from cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime count of stage requests that had to execute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drops every cached summary (the hit/miss counters are kept).
    ///
    /// The store never evicts on its own, and each entry owns a full
    /// [`TermPool`] — a long-lived store sweeping many *distinct*
    /// Tables-mode configurations grows linearly with configurations
    /// seen. Call this between sweeps whose table configs will not
    /// recur (abstract-mode entries are table-blind and cheap to
    /// rebuild, so clearing is never a correctness concern — only the
    /// next requests' cache temperature).
    pub fn clear(&self) {
        self.entries.lock().expect("summary store poisoned").clear();
    }

    /// Fetches the summary for `element` under `(mode, cfg)`,
    /// executing and caching it on a miss. Returns whether this was a
    /// hit. Execution happens outside the store lock; if two threads
    /// race on the same key both execute (identically — the executor
    /// is deterministic) and the first insert wins.
    fn stage(
        &self,
        element: &Element,
        mode: MapMode,
        cfg: &SymConfig,
    ) -> Result<(Arc<StoredStage>, bool), SymError> {
        let key = SummaryKey::of(element, mode, cfg);
        if let Some(found) = self
            .entries
            .lock()
            .expect("summary store poisoned")
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(found), true));
        }
        let mut exec_pool = TermPool::new();
        let exec_input = SymInput::fresh(&mut exec_pool, cfg, &element.name);
        let mut model = StageMapModel::new(element, mode);
        let report = execute(
            &mut exec_pool,
            element.program(),
            &exec_input,
            &mut model,
            cfg,
        )?;
        // Compact before storing: the execution pool also holds every
        // per-instruction intermediate and infeasible-branch term,
        // which rebasing never reads. Keep all variables (the
        // creation-order numbering contract) but only the terms
        // reachable from the summary.
        let mut pool = TermPool::new();
        let (input, segments) =
            import_summary(&mut pool, &exec_pool, &exec_input, &report.segments);
        let stored = Arc::new(StoredStage {
            pool,
            input,
            segments,
            states: report.states,
        });
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().expect("summary store poisoned");
        let entry = entries.entry(key).or_insert_with(|| Arc::clone(&stored));
        Ok((Arc::clone(entry), false))
    }
}

/// Runs step 1 over every stage of `pipeline`, sequentially, with a
/// throwaway store (intra-pipeline sharing only).
///
/// Each element (or loop body, per Condition 1) is executed exactly
/// once with fully unconstrained symbolic input — the per-element work
/// is `m · 2^n`, not `2^(m·n)` (§2.2). Prefer
/// [`summarize_pipeline_with_store`] (or a [`crate::Verifier`] with a
/// shared store) when several pipelines or sessions share elements.
pub fn summarize_pipeline(
    pool: &mut TermPool,
    pipeline: &Pipeline,
    cfg: &SymConfig,
    mode: MapMode,
) -> Result<PipelineSummaries, SymError> {
    summarize_pipeline_with_store(pool, pipeline, cfg, mode, &SummaryStore::new(), 1)
}

/// Runs step 1 over every stage of `pipeline`, one stage per worker
/// across `threads` threads (0 = all available cores), with a
/// throwaway store.
///
/// Identical output to [`summarize_pipeline`] — both drivers fetch
/// pool-independent summaries (executed in private pools) and migrate
/// them into `pool` in stage order, importing every summary variable
/// in creation order, so the master pool's variable numbering — and
/// therefore every downstream model and counterexample — is
/// independent of the thread count.
pub fn summarize_pipeline_par(
    pool: &mut TermPool,
    pipeline: &Pipeline,
    cfg: &SymConfig,
    mode: MapMode,
    threads: usize,
) -> Result<PipelineSummaries, SymError> {
    let threads = effective_threads(threads);
    summarize_pipeline_with_store(pool, pipeline, cfg, mode, &SummaryStore::new(), threads)
}

/// The step-1 driver: fetches every stage summary from `store`
/// (executing misses), then rebases them into `pool` in stage order.
///
/// `threads` pins the worker count for the fetch phase: `1` fetches
/// in-place, `0` uses all available cores (the crate-wide
/// convention). The rebase phase is always sequential in stage order,
/// which is what makes the master pool deterministic across thread
/// counts and store states.
pub fn summarize_pipeline_with_store(
    pool: &mut TermPool,
    pipeline: &Pipeline,
    cfg: &SymConfig,
    mode: MapMode,
    store: &SummaryStore,
    threads: usize,
) -> Result<PipelineSummaries, SymError> {
    let input = SymInput::fresh(pool, cfg, "in");
    let n = pipeline.stages.len();
    let threads = effective_threads(threads).clamp(1, n.max(1));
    let fetched = run_indexed(n, threads, |k| {
        store.stage(&pipeline.stages[k].element, mode, cfg)
    });

    let mut stages = Vec::with_capacity(n);
    let mut total_states = 0usize;
    let mut summary_hits = 0usize;
    let mut summary_misses = 0usize;
    for (k, res) in fetched.into_iter().enumerate() {
        let (stored, hit) = res?;
        if hit {
            summary_hits += 1;
        } else {
            summary_misses += 1;
        }
        total_states += stored.states;
        stages.push(rebase_stage(pool, &stored, &pipeline.stages[k].element));
    }
    Ok(PipelineSummaries {
        input,
        stages,
        total_states,
        summary_hits,
        summary_misses,
    })
}

/// Resolves a thread-count knob: `0` means all available cores (the
/// single policy behind every `threads` parameter in this crate).
pub(crate) fn effective_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Runs `n` independent indexed tasks across `threads` workers
/// (`<= 1` runs them in place) and collects the results in index
/// order — the one worker-pool scaffold behind the step-1 fetch phase
/// and [`crate::fleet::Fleet::run`].
pub(crate) fn run_indexed<T: Send>(
    n: usize,
    threads: usize,
    task: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return (0..n).map(task).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *slots[i].lock().expect("task slot poisoned") = Some(task(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("task slot poisoned")
                .expect("worker pool ran every task")
        })
        .collect()
}

/// Rebases a pool-independent stored summary into the master pool.
fn rebase_stage(pool: &mut TermPool, stored: &StoredStage, element: &Element) -> StageSummary {
    let (input, segments) = import_summary(pool, &stored.pool, &stored.input, &stored.segments);
    StageSummary {
        name: element.name.clone(),
        input,
        segments,
        loop_iters: match &element.kind {
            ElementKind::Straight(_) => None,
            ElementKind::Loop { max_iters, .. } => Some(*max_iters),
        },
        states: stored.states,
    }
}

/// Imports a stage summary from `src` into `pool`: all source
/// variables first, in creation order (so the destination numbering
/// matches what executing the stage in place would have produced),
/// then every term reachable from the summary. Used both to compact
/// summaries into their store entry and to rebase entries into
/// session pools — one code path, so a hit reproduces a miss exactly.
fn import_summary(
    pool: &mut TermPool,
    src: &TermPool,
    src_input: &SymInput,
    src_segments: &[Segment],
) -> (SymInput, Vec<Segment>) {
    let mut mig = Migrator::new();
    mig.import_all_vars(src, pool);
    let input = SymInput {
        pkt_bytes: src_input
            .pkt_bytes
            .iter()
            .map(|&t| mig.import(t, src, pool))
            .collect(),
        pkt_len: mig.import(src_input.pkt_len, src, pool),
        meta: src_input
            .meta
            .iter()
            .map(|&t| mig.import(t, src, pool))
            .collect(),
        pkt_byte_vars: src_input
            .pkt_byte_vars
            .iter()
            .map(|&v| mig.mapped_var(v).expect("input var imported"))
            .collect(),
        len_var: mig.mapped_var(src_input.len_var).expect("len var imported"),
        meta_vars: src_input
            .meta_vars
            .iter()
            .map(|&v| mig.mapped_var(v).expect("meta var imported"))
            .collect(),
        base_constraints: src_input
            .base_constraints
            .iter()
            .map(|&t| mig.import(t, src, pool))
            .collect(),
    };
    let segments = src_segments
        .iter()
        .map(|seg| Segment {
            constraint: seg
                .constraint
                .iter()
                .map(|&t| mig.import(t, src, pool))
                .collect(),
            assumed: seg
                .assumed
                .iter()
                .map(|&t| mig.import(t, src, pool))
                .collect(),
            outcome: seg.outcome,
            pkt_out: seg
                .pkt_out
                .iter()
                .map(|&t| mig.import(t, src, pool))
                .collect(),
            len_out: mig.import(seg.len_out, src, pool),
            meta_out: seg
                .meta_out
                .iter()
                .map(|&t| mig.import(t, src, pool))
                .collect(),
            instrs: seg.instrs,
            map_ops: seg
                .map_ops
                .iter()
                .map(|op| MapOpRecord {
                    map: op.map,
                    kind: op.kind,
                    key: mig.import(op.key, src, pool),
                    value: op.value.map(|v| mig.import(v, src, pool)),
                    havoc_value_var: op
                        .havoc_value_var
                        .map(|v| mig.mapped_var(v).expect("havoc var imported")),
                    havoc_flag_var: op
                        .havoc_flag_var
                        .map(|v| mig.mapped_var(v).expect("havoc var imported")),
                })
                .collect(),
        })
        .collect();
    (input, segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataplane::TableConfig;
    use elements::pipelines::to_pipeline;
    use symexec::SegOutcome;

    fn cfg() -> SymConfig {
        SymConfig {
            max_pkt_bytes: 48,
            ..Default::default()
        }
    }

    #[test]
    fn summarizes_classifier() {
        let p = to_pipeline("t", vec![elements::classifier::classifier()]);
        let mut pool = TermPool::new();
        let s = summarize_pipeline(&mut pool, &p, &cfg(), MapMode::Abstract).expect("ok");
        assert_eq!(s.stages.len(), 1);
        // Segments: drop (short), emit 0 (IPv4), emit 1 (ARP), emit 2.
        let segs = &s.stages[0].segments;
        assert_eq!(segs.len(), 4);
        assert!(
            !segs.iter().any(|g| g.outcome.is_crash()),
            "classifier guards its load: no feasible crash segment"
        );
    }

    #[test]
    fn dec_ttl_has_crash_suspect_in_isolation() {
        let p = to_pipeline("t", vec![elements::dec_ttl::dec_ttl()]);
        let mut pool = TermPool::new();
        let s = summarize_pipeline(&mut pool, &p, &cfg(), MapMode::Abstract).expect("ok");
        let crashes = s.stages[0]
            .segments
            .iter()
            .filter(|g| g.outcome.is_crash())
            .count();
        assert!(crashes >= 1, "unguarded TTL load is a suspect");
    }

    #[test]
    fn loop_body_summarized_once() {
        let p = to_pipeline("t", vec![elements::ip_options::ip_options(3, None)]);
        let mut pool = TermPool::new();
        let s = summarize_pipeline(&mut pool, &p, &cfg(), MapMode::Abstract).expect("ok");
        // max_options = 3 ⇒ composition bound 3 + 2.
        assert_eq!(s.stages[0].loop_iters, Some(5));
        // The body emits PORT_CONTINUE on option-advance segments.
        assert!(s.stages[0]
            .segments
            .iter()
            .any(|g| g.outcome == SegOutcome::Emit(dpir::PORT_CONTINUE)));
    }

    #[test]
    fn tables_mode_keeps_lookup_single_branch() {
        let routes = vec![(0x0A000000u32, 8u32, 0u32), (0x0B000000, 8, 1)];
        let p = to_pipeline("t", vec![elements::ip_lookup::ip_lookup(2, routes)]);
        let mut pool = TermPool::new();
        let abs = summarize_pipeline(&mut pool, &p, &cfg(), MapMode::Abstract).expect("ok");
        let mut pool2 = TermPool::new();
        let tab = summarize_pipeline(&mut pool2, &p, &cfg(), MapMode::Tables).expect("ok");
        // Table mode must not multiply states per entry (ITE chain).
        assert!(tab.total_states <= abs.total_states + 2);
    }

    #[test]
    fn store_shares_identical_elements_within_a_pipeline() {
        let p = to_pipeline(
            "t",
            vec![elements::dec_ttl::dec_ttl(), elements::dec_ttl::dec_ttl()],
        );
        let store = SummaryStore::new();
        let mut pool = TermPool::new();
        let s = summarize_pipeline_with_store(&mut pool, &p, &cfg(), MapMode::Abstract, &store, 1)
            .expect("ok");
        assert_eq!(s.summary_misses, 1, "first DecTTL executes");
        assert_eq!(s.summary_hits, 1, "second DecTTL is served from cache");
        assert_eq!(store.len(), 1);
        // The two stages are distinct instantiations: no shared vars.
        assert_ne!(
            s.stages[0].input.pkt_byte_vars, s.stages[1].input.pkt_byte_vars,
            "rebased instances must not alias"
        );
    }

    #[test]
    fn abstract_keys_ignore_table_contents() {
        let mk = |routes: Vec<(u32, u32, u32)>| {
            to_pipeline("t", vec![elements::ip_lookup::ip_lookup(2, routes)]).stages[0]
                .element
                .clone()
        };
        let a = mk(vec![(0x0A000000, 8, 0)]);
        let b = mk(vec![(0x0B000000, 8, 1)]);
        assert_eq!(
            SummaryKey::of(&a, MapMode::Abstract, &cfg()),
            SummaryKey::of(&b, MapMode::Abstract, &cfg()),
            "abstract execution never reads tables"
        );
        assert_ne!(
            SummaryKey::of(&a, MapMode::Tables, &cfg()),
            SummaryKey::of(&b, MapMode::Tables, &cfg()),
            "table contents are part of the Tables-mode address"
        );
    }

    #[test]
    fn sym_config_participates_in_the_key() {
        let e = to_pipeline("t", vec![elements::dec_ttl::dec_ttl()]).stages[0]
            .element
            .clone();
        let small = SymConfig {
            max_pkt_bytes: 32,
            ..Default::default()
        };
        assert_ne!(
            SummaryKey::of(&e, MapMode::Abstract, &cfg()),
            SummaryKey::of(&e, MapMode::Abstract, &small),
            "window size shapes the summary"
        );
    }

    #[test]
    fn lpm_and_equivalent_exact_share_a_tables_key() {
        let mut a = elements::dec_ttl::dec_ttl();
        a.tables
            .push((dpir::MapId(0), TableConfig::Lpm(vec![(10, 8, 7)])));
        let mut b = elements::dec_ttl::dec_ttl();
        b.tables
            .push((dpir::MapId(0), TableConfig::Exact(vec![(10, 7)])));
        assert_eq!(
            SummaryKey::of(&a, MapMode::Tables, &cfg()),
            SummaryKey::of(&b, MapMode::Tables, &cfg()),
            "the key hashes what execution consumes (as_pairs)"
        );
    }
}
