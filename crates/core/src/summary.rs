//! Verification step 1: per-element segment summaries.

use bvsolve::TermPool;
use dataplane::{ElementKind, Pipeline, TableConfig};
use symexec::{
    execute, AbstractMapModel, MapBranch, MapModel, SymConfig, SymError, SymInput, Segment,
    TableMapModel,
};

/// How static maps are modeled during step 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapMode {
    /// Abstract everything (crash-freedom / bounded-execution with
    /// arbitrary configuration — paper §4).
    Abstract,
    /// Use configured contents for static maps, summarized as ITE
    /// chains (filtering with a specific configuration); private maps
    /// stay abstract.
    Tables,
}

/// Step-1 result for one pipeline stage.
#[derive(Debug)]
pub struct StageSummary {
    /// Element name.
    pub name: String,
    /// The element's own symbolic input (substitution points).
    pub input: SymInput,
    /// All feasible segments.
    pub segments: Vec<Segment>,
    /// `Some(max_iters)` for loop elements.
    pub loop_iters: Option<u32>,
    /// States explored during step 1 (Fig. 4(c) "#states").
    pub states: usize,
}

/// Step-1 result for the whole pipeline.
#[derive(Debug)]
pub struct PipelineSummaries {
    /// The pipeline-level symbolic input (the packet as received).
    pub input: SymInput,
    /// Per-stage summaries, in stage order.
    pub stages: Vec<StageSummary>,
    /// Total states across all stages.
    pub total_states: usize,
}

/// A per-stage map model: configured static maps become ITE-chain
/// tables (in [`MapMode::Tables`]), everything else havocs.
struct StageMapModel {
    tables: TableMapModel,
    table_ids: Vec<u32>,
    fallback: AbstractMapModel,
}

impl StageMapModel {
    fn new(element: &dataplane::Element, mode: MapMode) -> Self {
        let mut tables = TableMapModel::new();
        let mut table_ids = Vec::new();
        if mode == MapMode::Tables {
            for (map, cfg) in &element.tables {
                let pairs = match cfg {
                    TableConfig::Exact(p) => p.clone(),
                    TableConfig::Lpm(_) => cfg.as_pairs(),
                };
                tables.set_table(*map, pairs);
                table_ids.push(map.0);
            }
        }
        StageMapModel {
            tables,
            table_ids,
            fallback: AbstractMapModel::new(),
        }
    }

    fn is_table(&self, map: dpir::MapId) -> bool {
        self.table_ids.contains(&map.0)
    }
}

impl MapModel for StageMapModel {
    fn read(
        &mut self,
        pool: &mut TermPool,
        map: dpir::MapId,
        decl: &dpir::MapDecl,
        key: bvsolve::TermId,
    ) -> Vec<MapBranch> {
        if self.is_table(map) {
            self.tables.read(pool, map, decl, key)
        } else {
            self.fallback.read(pool, map, decl, key)
        }
    }

    fn write(
        &mut self,
        pool: &mut TermPool,
        map: dpir::MapId,
        decl: &dpir::MapDecl,
        key: bvsolve::TermId,
        value: bvsolve::TermId,
    ) -> Vec<MapBranch> {
        if self.is_table(map) {
            self.tables.write(pool, map, decl, key, value)
        } else {
            self.fallback.write(pool, map, decl, key, value)
        }
    }

    fn test(
        &mut self,
        pool: &mut TermPool,
        map: dpir::MapId,
        decl: &dpir::MapDecl,
        key: bvsolve::TermId,
    ) -> Vec<MapBranch> {
        if self.is_table(map) {
            self.tables.test(pool, map, decl, key)
        } else {
            self.fallback.test(pool, map, decl, key)
        }
    }
}

/// Runs step 1 over every stage of `pipeline`.
///
/// Each element (or loop body, per Condition 1) is executed exactly
/// once with fully unconstrained symbolic input — the per-element work
/// is `m · 2^n`, not `2^(m·n)` (§2.2).
pub fn summarize_pipeline(
    pool: &mut TermPool,
    pipeline: &Pipeline,
    cfg: &SymConfig,
    mode: MapMode,
) -> Result<PipelineSummaries, SymError> {
    let input = SymInput::fresh(pool, cfg, "in");
    let mut stages = Vec::with_capacity(pipeline.stages.len());
    let mut total_states = 0usize;
    for (k, stage) in pipeline.stages.iter().enumerate() {
        let elem = &stage.element;
        let elem_input = SymInput::fresh(pool, cfg, &format!("e{k}"));
        let mut model = StageMapModel::new(elem, mode);
        let prog = elem.program();
        let report = execute(pool, prog, &elem_input, &mut model, cfg)?;
        total_states += report.states;
        stages.push(StageSummary {
            name: elem.name.clone(),
            input: elem_input,
            segments: report.segments,
            loop_iters: match &elem.kind {
                ElementKind::Straight(_) => None,
                ElementKind::Loop { max_iters, .. } => Some(*max_iters),
            },
            states: report.states,
        });
    }
    Ok(PipelineSummaries {
        input,
        stages,
        total_states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use elements::pipelines::to_pipeline;
    use symexec::SegOutcome;

    fn cfg() -> SymConfig {
        SymConfig {
            max_pkt_bytes: 48,
            ..Default::default()
        }
    }

    #[test]
    fn summarizes_classifier() {
        let p = to_pipeline("t", vec![elements::classifier::classifier()]);
        let mut pool = TermPool::new();
        let s = summarize_pipeline(&mut pool, &p, &cfg(), MapMode::Abstract).expect("ok");
        assert_eq!(s.stages.len(), 1);
        // Segments: drop (short), emit 0 (IPv4), emit 1 (ARP), emit 2.
        let segs = &s.stages[0].segments;
        assert_eq!(segs.len(), 4);
        assert!(!segs.iter().any(|g| g.outcome.is_crash()),
            "classifier guards its load: no feasible crash segment");
    }

    #[test]
    fn dec_ttl_has_crash_suspect_in_isolation() {
        let p = to_pipeline("t", vec![elements::dec_ttl::dec_ttl()]);
        let mut pool = TermPool::new();
        let s = summarize_pipeline(&mut pool, &p, &cfg(), MapMode::Abstract).expect("ok");
        let crashes = s.stages[0]
            .segments
            .iter()
            .filter(|g| g.outcome.is_crash())
            .count();
        assert!(crashes >= 1, "unguarded TTL load is a suspect");
    }

    #[test]
    fn loop_body_summarized_once() {
        let p = to_pipeline("t", vec![elements::ip_options::ip_options(3, None)]);
        let mut pool = TermPool::new();
        let s = summarize_pipeline(&mut pool, &p, &cfg(), MapMode::Abstract).expect("ok");
        // max_options = 3 ⇒ composition bound 3 + 2.
        assert_eq!(s.stages[0].loop_iters, Some(5));
        // The body emits PORT_CONTINUE on option-advance segments.
        assert!(s.stages[0]
            .segments
            .iter()
            .any(|g| g.outcome == SegOutcome::Emit(dpir::PORT_CONTINUE)));
    }

    #[test]
    fn tables_mode_keeps_lookup_single_branch() {
        let routes = vec![(0x0A000000u32, 8u32, 0u32), (0x0B000000, 8, 1)];
        let p = to_pipeline("t", vec![elements::ip_lookup::ip_lookup(2, routes)]);
        let mut pool = TermPool::new();
        let abs = summarize_pipeline(&mut pool, &p, &cfg(), MapMode::Abstract).expect("ok");
        let mut pool2 = TermPool::new();
        let tab = summarize_pipeline(&mut pool2, &p, &cfg(), MapMode::Tables).expect("ok");
        // Table mode must not multiply states per entry (ITE chain).
        assert!(tab.total_states <= abs.total_states + 2);
    }
}
