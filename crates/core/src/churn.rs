//! Config-update streams: incremental re-verification under
//! control-plane churn.
//!
//! A deployed dataplane is not verified once — its tables mutate
//! continuously (FIB updates, NAT statics, classifier rules), and
//! gating every config push on a verdict means re-verifying at the
//! control plane's update rate. A [`ChurnSession`] makes that cheap:
//! it holds one verified pipeline plus all the warm state a fresh
//! session would have to rebuild — the content-addressed
//! [`SummaryStore`], a persistent [`TermPool`], per-mode learnt-core
//! stores and incremental solver sessions — and exposes
//! [`ChurnSession::apply_delta`], which applies one
//! [`TableDelta`] and re-establishes every property.
//!
//! Three observations make per-update work O(change), not O(pipeline):
//!
//! 1. **Abstract summaries are table-blind.** [`MapMode::Abstract`]
//!    keys exclude table contents, so crash-freedom and
//!    bounded-execution summaries survive *every* table update
//!    untouched.
//! 2. **Tables-mode keys are per-stage.** A delta re-keys only the
//!    touched stages ([`SummaryKey`] over the incrementally-maintained
//!    table fingerprint); unchanged stages keep their summaries — and,
//!    at [`ReuseLevel::Cores`] and above, their exact terms in the
//!    persistent pool, so re-composed paths re-intern to identical
//!    `TermId`s and previously learnt UNSAT cores keep pruning.
//!    Cores referring to a *replaced* stage's terms can never match a
//!    new composition (the pool is append-only, so stale `TermId`s are
//!    never reused) — retention across updates is sound by
//!    construction.
//! 3. **Verdicts are deterministic.** The step-2 search is
//!    deterministic over its inputs, so when an update leaves a mode's
//!    summaries byte-identical (every table delta, for Abstract; no-op
//!    deltas, for Tables), the previous report can be replayed without
//!    searching at all ([`ReuseLevel::Sessions`]).
//!
//! The reuse ladder is explicit ([`ReuseLevel`]) so each rung can be
//! measured — the `churn_ablation` benchmark drives identical update
//! streams through every level and asserts verdict, counterexample
//! and composed-path equality against full re-verification on every
//! update.
//!
//! ```no_run
//! use verifier::{ChurnSession, Property, ReuseLevel, VerifyConfig};
//! use dataplane::{TableDelta, TableOp};
//! # let pipeline = dataplane::Pipeline::new("p");
//! let mut session = ChurnSession::new(
//!     pipeline,
//!     vec![Property::CrashFreedom],
//!     VerifyConfig::default(),
//!     ReuseLevel::Sessions,
//! )
//! .expect("search-based properties only");
//! let initial = session.verify();
//! for delta in [TableDelta::new("IPlookup", dpir::MapId(0), TableOp::LpmRemove(vec![(0, 24)]))] {
//!     let report = session.apply_delta(&delta).expect("delta applies");
//!     println!("update {}: {:?}", report.update, report.verdicts());
//! }
//! ```

use crate::cores::CoreStore;
use crate::persist::{load_cores, save_cores, CorePack};
use crate::report::{SummaryCacheStats, Verdict, VerifyReport};
use crate::session::{run_seq_search, Property, SearchProp, Verifier};
use crate::step2::{aborted_report, segment_count, verdict_of, QuerySolver, VerifyConfig};
use crate::summary::{
    rebase_stage, summarize_pipeline_with_store, MapMode, PipelineSummaries, SummaryKey,
    SummaryStore,
};
use bvsolve::TermPool;
use dataplane::{DeltaError, Pipeline, TableDelta};
use dpir::fingerprint128;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How much state a [`ChurnSession`] carries across updates — the
/// ablation ladder of the `churn_ablation` benchmark. Each level
/// includes everything below it; all levels produce identical
/// verdicts, counterexample bytes and composed-path counts (asserted
/// continuously by the benchmark and the differential tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReuseLevel {
    /// Re-verify from scratch on every update: fresh summaries, fresh
    /// pool, fresh solver, no carried cores. The baseline arm.
    FullReverify,
    /// Keep the content-addressed [`SummaryStore`] warm across
    /// updates: only stages whose Tables-mode key changed re-execute;
    /// everything else rebases from cache into a fresh per-update
    /// pool.
    Summaries,
    /// Additionally keep the [`TermPool`] and the composed summaries
    /// alive, patching only touched stages in place, and retain the
    /// per-mode learnt-core stores — unchanged compositions re-intern
    /// to identical `TermId`s, so old cores keep pruning new searches.
    Cores,
    /// Additionally keep the incremental solver sessions (blasted
    /// constraints, learnt clauses, saved phases) across updates, and
    /// replay the previous report outright for properties whose
    /// mode's summaries this update did not change.
    Sessions,
}

impl ReuseLevel {
    /// The benchmark arm name for this level.
    pub fn arm(&self) -> &'static str {
        match self {
            ReuseLevel::FullReverify => "full-reverify",
            ReuseLevel::Summaries => "summary-reuse",
            ReuseLevel::Cores => "core-reuse",
            ReuseLevel::Sessions => "incremental-session",
        }
    }
}

/// A property was passed that the churn engine cannot re-check
/// incrementally (the generic baseline and the state analysis are not
/// step-2 searches).
#[derive(Debug, Clone)]
pub struct UnsupportedProperty(pub String);

impl std::fmt::Display for UnsupportedProperty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "churn sessions support search-based properties only, got {}",
            self.0
        )
    }
}

impl std::error::Error for UnsupportedProperty {}

/// The outcome of one update (or of the initial verification):
/// everything [`ChurnSession::apply_delta`] did and found.
#[derive(Debug, Clone)]
pub struct UpdateReport {
    /// Update sequence number (`0` = initial verification).
    pub update: u64,
    /// `(stage index, pair view changed)` per stage the delta touched
    /// (empty for the initial verification).
    pub touched: Vec<(usize, bool)>,
    /// One report per configured property, in configuration order.
    pub reports: Vec<VerifyReport>,
    /// Per property: whether the report was replayed from the
    /// previous update without searching (only at
    /// [`ReuseLevel::Sessions`], only when the property's mode saw no
    /// summary change).
    pub replayed: Vec<bool>,
    /// Stages symbolically re-executed this update (store misses).
    pub stages_reexecuted: usize,
    /// Stages re-rebased from the warm store this update (store hits).
    pub stages_rebased: usize,
    /// Wall-clock spent refreshing step-1 state: delta patching plus
    /// the summary building the property checks report.
    pub step1_time: Duration,
    /// Wall-clock spent re-establishing the properties (the step-2
    /// search time summed over this update's reports).
    pub step2_time: Duration,
    /// Total wall-clock of the update, delta application included —
    /// the per-update verdict latency the benchmark percentiles.
    pub total_time: Duration,
}

impl UpdateReport {
    /// The verdicts, in property order.
    pub fn verdicts(&self) -> Vec<&Verdict> {
        self.reports.iter().map(|r| &r.verdict).collect()
    }
}

/// Running counters over a session's lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChurnStats {
    /// Updates applied (initial verification excluded).
    pub updates: u64,
    /// Stage summaries symbolically re-executed across all updates.
    pub stages_reexecuted: u64,
    /// Stage summaries patched in from the warm store across all
    /// updates.
    pub stages_rebased: u64,
    /// Property checks replayed without searching.
    pub checks_replayed: u64,
    /// Learnt cores resolved from the on-disk store into the session
    /// across all updates (always zero without
    /// [`ChurnSession::with_store_path`]). Resolution is find-only and
    /// deduplicated by core subsumption, so on a deterministically
    /// replayed stream these act as a checked backup of what the
    /// session re-learns; they add pruning power when the restarted
    /// stream diverges from the one that persisted them.
    pub cores_imported: u64,
}

const N_MODES: usize = 2;

fn mode_idx(mode: MapMode) -> usize {
    match mode {
        MapMode::Abstract => 0,
        MapMode::Tables => 1,
    }
}

/// A long-lived verification session over one owned pipeline,
/// re-establishing a fixed property set after every table update.
///
/// See the [module docs](self) for the reuse model. All step-2 work is
/// sequential — the session is built for per-update *latency* under a
/// stream, where the warm state, not parallelism, is the lever (a
/// fleet of variants still parallelizes across sessions, see
/// [`crate::fleet`]).
pub struct ChurnSession {
    pipeline: Pipeline,
    properties: Vec<Property>,
    cfg: VerifyConfig,
    level: ReuseLevel,
    store: Arc<SummaryStore>,
    pool: TermPool,
    sums: [Option<PipelineSummaries>; N_MODES],
    keys: [Vec<SummaryKey>; N_MODES],
    solvers: [Option<QuerySolver>; N_MODES],
    core_stores: [Arc<Mutex<CoreStore>>; N_MODES],
    /// Last report per property, replayed at [`ReuseLevel::Sessions`]
    /// when the property's mode saw no summary change.
    memo: Vec<Option<VerifyReport>>,
    /// Directory for persisting learnt cores (and, via the persistent
    /// summary store, step-1 summaries) across processes. Set by
    /// [`ChurnSession::with_store_path`].
    store_dir: Option<std::path::PathBuf>,
    /// Per-mode cores loaded from disk but not yet imported into the
    /// session (find-only import succeeds once the session's
    /// deterministic term trajectory has interned the cores' terms;
    /// the rest retry on later updates).
    pending_cores: [Option<CorePack>; N_MODES],
    /// Per-mode `(epoch, core count)` at the last on-disk save, so
    /// unchanged stores are not rewritten every update.
    cores_saved: [Option<(u128, usize)>; N_MODES],
    updates: u64,
    stats: ChurnStats,
}

/// The on-disk core-file epoch for one mode: a fingerprint of the
/// per-stage summary keys, so a process that comes up with a different
/// pipeline, table state or symexec configuration misses cleanly
/// instead of loading another epoch's cores. (Loading them would still
/// be *sound* — a core is an UNSAT term set, and the find-only import
/// only materializes cores whose terms exist with identical variables
/// — but epoch keying keeps the store tidy and the hit rate
/// meaningful.)
fn core_epoch(keys: &[SummaryKey]) -> u128 {
    fingerprint128(&keys)
}

impl ChurnSession {
    /// A session over `pipeline`, checking `properties` after every
    /// update at reuse `level`.
    ///
    /// Only search-based properties (crash-freedom, bounded-execution,
    /// filtering, custom) are supported. [`VerifyConfig::static_simplify`]
    /// is forced off: the simplified program cache cannot be patched
    /// per-delta, and the pass rewrites programs, not tables, so churn
    /// gains nothing from it.
    pub fn new(
        pipeline: Pipeline,
        properties: Vec<Property>,
        mut cfg: VerifyConfig,
        level: ReuseLevel,
    ) -> Result<Self, UnsupportedProperty> {
        for p in &properties {
            if SearchProp::of(p).is_none() {
                return Err(UnsupportedProperty(format!("{p:?}")));
            }
        }
        cfg.static_simplify = false;
        let memo = properties.iter().map(|_| None).collect();
        Ok(ChurnSession {
            pipeline,
            properties,
            cfg,
            level,
            store: SummaryStore::shared(),
            pool: TermPool::new(),
            sums: [None, None],
            keys: [Vec::new(), Vec::new()],
            solvers: [None, None],
            core_stores: [
                Arc::new(Mutex::new(CoreStore::new())),
                Arc::new(Mutex::new(CoreStore::new())),
            ],
            memo,
            store_dir: None,
            pending_cores: [None, None],
            cores_saved: [None, None],
            updates: 0,
            stats: ChurnStats::default(),
        })
    }

    /// Backs the session with the on-disk store directory `dir`
    /// (created if absent): step-1 summaries load through and write
    /// back to the directory's content-addressed files (see
    /// [`SummaryStore::persistent`]), and — at [`ReuseLevel::Cores`]
    /// and above — learnt UNSAT cores are persisted per
    /// `(mode, epoch)` after each update and re-imported on start-up,
    /// so a restarted verifier daemon begins warm. Replaces any store
    /// set earlier; call before [`ChurnSession::verify`].
    pub fn with_store_path(mut self, dir: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        self.store = Arc::new(SummaryStore::persistent(&dir)?);
        self.store_dir = Some(dir);
        Ok(self)
    }

    /// Shares a (typically capacity-bounded) summary store instead of
    /// the session-private one. Call before [`ChurnSession::verify`].
    #[must_use]
    pub fn with_store(mut self, store: Arc<SummaryStore>) -> Self {
        self.store = store;
        self
    }

    /// The pipeline in its current (post-deltas) configuration.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ChurnStats {
        self.stats
    }

    /// The summary store the session consults.
    pub fn store(&self) -> &Arc<SummaryStore> {
        &self.store
    }

    /// Runs the initial full verification (update `0`). Subsequent
    /// [`ChurnSession::apply_delta`] calls re-establish the same
    /// properties incrementally.
    pub fn verify(&mut self) -> UpdateReport {
        let t0 = Instant::now();
        self.run_update(Vec::new(), false, t0)
    }

    /// Applies one table update and re-establishes every property.
    ///
    /// The pipeline is mutated in place; on error (unknown stage or
    /// table, op/kind mismatch) it is left untouched and no
    /// verification runs.
    pub fn apply_delta(&mut self, delta: &TableDelta) -> Result<UpdateReport, DeltaError> {
        let t0 = Instant::now();
        let effect = delta.apply(&mut self.pipeline)?;
        self.updates += 1;
        self.stats.updates += 1;
        let tables_changed = effect.any_changed();
        Ok(self.run_update(effect.touched, tables_changed, t0))
    }

    /// Applies a burst of table updates as **one** incremental step:
    /// every delta is validated and applied atomically (any error
    /// leaves the pipeline exactly as before `apply_batch` and nothing
    /// re-verifies), the touched stages are coalesced, and the
    /// property set is re-established once for the whole burst — not
    /// once per delta. Control planes batch naturally (a BGP
    /// convergence event is thousands of FIB updates), and per-stage
    /// re-execution is keyed on the *net* table state, so a burst that
    /// touches one stage fifty times re-summarizes it once — and a
    /// burst whose deltas cancel out replays like a no-op.
    pub fn apply_batch(&mut self, deltas: &[TableDelta]) -> Result<UpdateReport, DeltaError> {
        let t0 = Instant::now();
        let mut next = self.pipeline.clone();
        let mut coalesced: BTreeMap<usize, bool> = BTreeMap::new();
        for delta in deltas {
            let effect = delta.apply(&mut next)?;
            for (k, changed) in effect.touched {
                *coalesced.entry(k).or_insert(false) |= changed;
            }
        }
        self.pipeline = next;
        self.updates += 1;
        self.stats.updates += 1;
        // The per-delta `changed` flags can overstate the net effect
        // (an insert and a remove of the same entry cancel). When the
        // session tracks per-stage keys (Cores+), recompute each flag
        // against the cached key, so cancelled bursts keep their
        // replay/no-op fast path.
        let idx = mode_idx(MapMode::Tables);
        let touched: Vec<(usize, bool)> = coalesced
            .into_iter()
            .map(|(k, changed)| {
                let net = if self.sums[idx].is_some() {
                    SummaryKey::of(
                        &self.pipeline.stages[k].element,
                        MapMode::Tables,
                        &self.cfg.sym,
                    ) != self.keys[idx][k]
                } else {
                    changed
                };
                (k, net)
            })
            .collect();
        let tables_changed = touched.iter().any(|&(_, changed)| changed);
        Ok(self.run_update(touched, tables_changed, t0))
    }

    /// The shared driver behind [`ChurnSession::verify`] and
    /// [`ChurnSession::apply_delta`].
    fn run_update(
        &mut self,
        touched: Vec<(usize, bool)>,
        tables_changed: bool,
        t0: Instant,
    ) -> UpdateReport {
        let t_step1 = Instant::now();
        // Disk-tier counter snapshot: each report of this update
        // carries the update's deltas as of its construction.
        let disk0 = (
            self.store.store_loads(),
            self.store.store_writes(),
            self.store.load_bytes(),
        );
        // Which modes' summaries this update may have changed. Abstract
        // keys are table-blind: no table delta ever touches them.
        let mut mode_changed = [false; N_MODES];
        mode_changed[mode_idx(MapMode::Tables)] = tables_changed;

        let (stages_reexecuted, stages_rebased) = match self.level {
            ReuseLevel::FullReverify | ReuseLevel::Summaries => {
                // Nothing persists below the summary store; drop any
                // state a lower-level constructor may have left and,
                // for the baseline arm, the store contents too.
                self.pool = TermPool::new();
                self.sums = [None, None];
                self.keys = [Vec::new(), Vec::new()];
                self.solvers = [None, None];
                self.core_stores = [
                    Arc::new(Mutex::new(CoreStore::new())),
                    Arc::new(Mutex::new(CoreStore::new())),
                ];
                self.memo.iter_mut().for_each(|m| *m = None);
                if self.level == ReuseLevel::FullReverify {
                    self.store.clear();
                }
                (0, 0)
            }
            ReuseLevel::Cores | ReuseLevel::Sessions => {
                if self.level == ReuseLevel::Cores {
                    // Solver sessions are per-update at this level;
                    // cores, pool and summaries persist.
                    self.solvers = [None, None];
                    self.memo.iter_mut().for_each(|m| *m = None);
                }
                match self.patch_tables(&touched) {
                    Ok(counts) => counts,
                    Err(e) => {
                        // A patch failure poisons the Tables cache;
                        // report it like a step-1 abort.
                        return self.aborted_update(touched, t0, e);
                    }
                }
            }
        };
        self.stats.stages_reexecuted += stages_reexecuted as u64;
        self.stats.stages_rebased += stages_rebased as u64;
        let step1_patch = t_step1.elapsed();

        let mut reports = Vec::with_capacity(self.properties.len());
        let mut replayed = Vec::with_capacity(self.properties.len());
        match self.level {
            ReuseLevel::FullReverify | ReuseLevel::Summaries => {
                // A fresh session per update *is* the semantics of
                // these arms; `Verifier` with the shared (or private)
                // store implements them exactly.
                let mut v = Verifier::new(&self.pipeline).config(self.cfg.clone());
                if self.level == ReuseLevel::Summaries {
                    v = v.with_store(Arc::clone(&self.store));
                }
                for p in &self.properties {
                    reports.push(v.check(p.clone()).expect_verify());
                    replayed.push(false);
                }
            }
            ReuseLevel::Cores | ReuseLevel::Sessions => {
                let cache_stats = SummaryCacheStats {
                    hits: stages_rebased,
                    misses: stages_reexecuted,
                    ..Default::default()
                };
                for i in 0..self.properties.len() {
                    let spec = SearchProp::of(&self.properties[i]).expect("validated in new");
                    let midx = mode_idx(spec.mode());
                    let can_replay = self.level == ReuseLevel::Sessions
                        && !mode_changed[midx]
                        && self.sums[midx].is_some();
                    if can_replay {
                        if let Some(prev) = &self.memo[i] {
                            // Deterministic search over byte-identical
                            // summaries: the previous report *is* the
                            // result (zero step-2 time — that is the
                            // point).
                            let mut r = prev.clone();
                            r.step1_time = Duration::ZERO;
                            r.step2_time = Duration::ZERO;
                            reports.push(r);
                            replayed.push(true);
                            self.stats.checks_replayed += 1;
                            continue;
                        }
                    }
                    let report = self.run_one(&spec, cache_stats, disk0);
                    self.memo[i] = Some(report.clone());
                    reports.push(report);
                    replayed.push(false);
                }
            }
        }
        // Persist the learnt cores the warm arms accumulated, under
        // the current epoch (no-op when the count is unchanged for
        // that epoch, or without a store directory).
        if matches!(self.level, ReuseLevel::Cores | ReuseLevel::Sessions) {
            self.save_cores_to_disk();
        }
        // Attribute times uniformly across levels: step 1 is the
        // delta patching/reset plus whatever summary building the
        // property checks report (the `Verifier`-driven arms pay it
        // inside `check`, the warm arms inside `ensure`); step 2 is
        // the search time the reports carry. Driver overhead shows
        // only in `total_time`.
        let step1_time = step1_patch + reports.iter().map(|r| r.step1_time).sum::<Duration>();
        let step2_time = reports.iter().map(|r| r.step2_time).sum();

        UpdateReport {
            update: self.updates,
            touched,
            reports,
            replayed,
            stages_reexecuted,
            stages_rebased,
            step1_time,
            step2_time,
            total_time: t0.elapsed(),
        }
    }

    /// Ensures `mode`'s summaries exist in the persistent pool
    /// (levels [`ReuseLevel::Cores`]+), recording per-stage keys.
    fn ensure(&mut self, mode: MapMode) -> Result<(), symexec::SymError> {
        let idx = mode_idx(mode);
        if self.sums[idx].is_some() {
            return Ok(());
        }
        let sums = summarize_pipeline_with_store(
            &mut self.pool,
            &self.pipeline,
            &self.cfg.sym,
            mode,
            &self.store,
            1,
        )?;
        self.keys[idx] = self
            .pipeline
            .stages
            .iter()
            .map(|s| SummaryKey::of(&s.element, mode, &self.cfg.sym))
            .collect();
        self.sums[idx] = Some(sums);
        // First build of this mode: pick up any cores a previous
        // process persisted under the same epoch. They import lazily
        // (find-only) as this session's term trajectory catches up —
        // see `run_one`.
        if let Some(dir) = &self.store_dir {
            self.pending_cores[idx] = load_cores(dir, mode, core_epoch(&self.keys[idx]));
        }
        Ok(())
    }

    /// Writes each mode's learnt cores to the store directory under
    /// the mode's current epoch, skipping modes whose `(epoch, count)`
    /// already matches the last save. Cores survive table churn (the
    /// pool is append-only, so retention is sound — module docs), so
    /// after an epoch move the full current set is re-saved under the
    /// new epoch.
    fn save_cores_to_disk(&mut self) {
        let Some(dir) = &self.store_dir else { return };
        for mode in [MapMode::Abstract, MapMode::Tables] {
            let idx = mode_idx(mode);
            if self.sums[idx].is_none() {
                continue;
            }
            let cores: Vec<_> = {
                let store = self.core_stores[idx].lock().expect("core store poisoned");
                store.entries().cloned().collect()
            };
            if cores.is_empty() {
                continue;
            }
            let epoch = core_epoch(&self.keys[idx]);
            if self.cores_saved[idx] == Some((epoch, cores.len())) {
                continue;
            }
            if save_cores(dir, mode, epoch, &self.pool, &cores) {
                self.cores_saved[idx] = Some((epoch, cores.len()));
            }
        }
    }

    /// Re-summarizes, in place, every touched-and-changed stage of the
    /// cached Tables summaries. Returns `(reexecuted, rebased)` stage
    /// counts. Stages whose key is unchanged (and the whole Abstract
    /// cache) keep their exact terms in the persistent pool.
    fn patch_tables(
        &mut self,
        touched: &[(usize, bool)],
    ) -> Result<(usize, usize), symexec::SymError> {
        let idx = mode_idx(MapMode::Tables);
        let mut reexecuted = 0;
        let mut rebased = 0;
        if self.sums[idx].is_none() {
            // Nothing cached yet — the first property needing Tables
            // builds from scratch (through the warm store).
            return Ok((0, 0));
        }
        for &(k, changed) in touched {
            if !changed {
                continue;
            }
            let element = &self.pipeline.stages[k].element;
            let key = SummaryKey::of(element, MapMode::Tables, &self.cfg.sym);
            if key == self.keys[idx][k] {
                continue;
            }
            let (stored, hit) = self.store.stage(element, MapMode::Tables, &self.cfg.sym)?;
            if hit {
                rebased += 1;
            } else {
                reexecuted += 1;
            }
            let sums = self.sums[idx].as_mut().expect("checked above");
            let stage = rebase_stage(&mut self.pool, &stored, element);
            sums.total_states = sums.total_states - sums.stages[k].states + stage.states;
            sums.stages[k] = stage;
            self.keys[idx][k] = key;
        }
        Ok((reexecuted, rebased))
    }

    /// One warm sequential property check (levels
    /// [`ReuseLevel::Cores`]+).
    fn run_one(
        &mut self,
        spec: &SearchProp,
        cache_stats: SummaryCacheStats,
        disk0: (u64, u64, u64),
    ) -> VerifyReport {
        let t0 = Instant::now();
        let mode = spec.mode();
        let idx = mode_idx(mode);
        let t_build = Instant::now();
        let had_sums = self.sums[idx].is_some();
        if let Err(e) = self.ensure(mode) {
            return aborted_report(&spec.name(), &self.pipeline, e, t0);
        }
        let step1_time = if had_sums {
            Duration::ZERO
        } else {
            t_build.elapsed()
        };
        // Find-only import of any disk-loaded cores: on a diverged
        // stream the terms may already be interned, in which case the
        // cores prune this very search.
        self.try_import_cores(idx);
        let t1 = Instant::now();
        let (outcome, solver_stats, core_stats, prefilter_stats, composed_paths) = {
            let ChurnSession {
                pipeline,
                cfg,
                pool,
                sums,
                solvers,
                core_stores,
                ..
            } = &mut *self;
            let sums = sums[idx].as_ref().expect("ensured");
            let solver = solvers[idx].get_or_insert_with(|| QuerySolver::new(cfg));
            run_seq_search(pool, pipeline, sums, cfg, spec, solver, &core_stores[idx])
        };
        let step2_time = t1.elapsed();
        // Retry after the search: on a deterministically replayed
        // stream the search itself is what interns the terms a
        // persisted core refers to, so a pack only becomes resolvable
        // once the search that re-derives its cores has run. Resolved
        // cores are deduplicated by core subsumption; the counter
        // records recovery, while the pruning benefit accrues to
        // diverged streams (pre-search attempt above).
        self.try_import_cores(idx);
        let sums = self.sums[idx].as_ref().expect("ensured");
        VerifyReport {
            property: spec.name(),
            pipeline: self.pipeline.name.clone(),
            verdict: verdict_of(outcome),
            step1_states: sums.total_states,
            step1_segments: segment_count(sums),
            suspects: spec.suspects(&self.pipeline, sums),
            composed_paths,
            solver: solver_stats,
            cores: core_stats,
            summary: SummaryCacheStats {
                store_size: self.store.len(),
                store_loads: self.store.store_loads() - disk0.0,
                store_writes: self.store.store_writes() - disk0.1,
                load_bytes: self.store.load_bytes() - disk0.2,
                evictions: self.store.evictions(),
                ..cache_stats
            },
            static_stats: Default::default(),
            prefilter: prefilter_stats,
            step1_time,
            step2_time,
        }
    }

    /// One find-only import pass over this mode's pending disk-loaded
    /// cores, if any. Clears the pack once nothing is pending.
    fn try_import_cores(&mut self, idx: usize) {
        if let Some(pack) = self.pending_cores[idx].as_mut() {
            let imported = {
                let mut store = self.core_stores[idx].lock().expect("core store poisoned");
                pack.import_into(&self.pool, &mut store)
            };
            self.stats.cores_imported += imported as u64;
            if pack.pending() == 0 {
                self.pending_cores[idx] = None;
            }
        }
    }

    /// Every property aborted on a step-1 failure during patching.
    fn aborted_update(
        &mut self,
        touched: Vec<(usize, bool)>,
        t0: Instant,
        e: symexec::SymError,
    ) -> UpdateReport {
        // The Tables cache may be half-patched; drop it so the next
        // update rebuilds from the store.
        self.sums[mode_idx(MapMode::Tables)] = None;
        self.memo.iter_mut().for_each(|m| *m = None);
        let reports: Vec<VerifyReport> = self
            .properties
            .iter()
            .map(|p| {
                let name = SearchProp::of(p).expect("validated in new").name();
                aborted_report(&name, &self.pipeline, e.clone(), t0)
            })
            .collect();
        let replayed = vec![false; reports.len()];
        UpdateReport {
            update: self.updates,
            touched,
            reports,
            replayed,
            stages_reexecuted: 0,
            stages_rebased: 0,
            step1_time: t0.elapsed(),
            step2_time: Duration::ZERO,
            total_time: t0.elapsed(),
        }
    }
}
