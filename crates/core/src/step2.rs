//! Verification step 2: composing suspect paths and deciding
//! feasibility — plus the three §4 property drivers.

use crate::compose::{compose, ComposedState};
use crate::report::{CounterExample, Verdict, VerifyReport};
use crate::summary::{summarize_pipeline, MapMode, PipelineSummaries};
use bvsolve::{BvSolver, SatVerdict, TermPool};
use dataplane::{Pipeline, Route};
use dpir::PORT_CONTINUE;
use symexec::{SegOutcome, SymConfig};
use std::collections::BinaryHeap;
use std::time::Instant;

/// Configuration of a verification run.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Step-1 symbolic execution settings.
    pub sym: SymConfig,
    /// Step-2 budget: maximum paths composed before giving up
    /// (the analogue of the paper's 12-hour wall).
    pub max_composed_paths: usize,
    /// CDCL conflict budget per step-2 feasibility query.
    pub solver_conflict_budget: u64,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            sym: SymConfig::default(),
            max_composed_paths: 1 << 20,
            solver_conflict_budget: 200_000,
        }
    }
}

/// A search node: position in the pipeline plus the composed state.
struct Node {
    stage: usize,
    iter: u32,
    state: ComposedState,
}

enum Feas {
    Sat(bvsolve::Model),
    Unsat,
    Unknown,
}

fn check(
    pool: &mut TermPool,
    solver: &mut BvSolver,
    state: &ComposedState,
    extra: &[bvsolve::TermId],
) -> Feas {
    let mut cs = state.constraint.clone();
    cs.extend_from_slice(extra);
    match solver.check(pool, &cs) {
        SatVerdict::Sat(m) => Feas::Sat(m),
        SatVerdict::Unsat => Feas::Unsat,
        SatVerdict::Unknown => Feas::Unknown,
    }
}

/// Whether any stage ≥ `k` can still host a property violation.
fn lookahead(sums: &PipelineSummaries, is_suspect: impl Fn(usize) -> bool) -> Vec<bool> {
    let n = sums.stages.len();
    let mut v = vec![false; n + 1];
    for k in (0..n).rev() {
        v[k] = v[k + 1] || is_suspect(k);
    }
    v
}

/// Internal search result.
enum SearchOutcome {
    Clean,
    Violation(CounterExample),
    Budget,
    SolverUnknown,
}

/// Generic step-2 DFS over composed paths.
///
/// `suspect(stage, seg)` marks the segment outcomes that violate the
/// property; `unknown_marker` marks outcomes that, if feasible, make a
/// *proof* impossible without being violations themselves (step-1 fuel
/// exhaustion: the summary is incomplete past that point);
/// `terminal_violates` additionally treats packets *leaving* the
/// pipeline via a sink as violations (filtering properties).
///
/// Loops: a segment still requesting another iteration at the
/// composed-iteration bound is likewise a proof blocker (crashes could
/// hide in uncovered iterations), so a feasible one degrades the
/// verdict to Unknown. With the bound set to the packet-size-derived
/// maximum (§3.2: "the number of loop iterations is bounded by the
/// maximum packet size"), convergent loops make that branch infeasible
/// and full proofs go through.
#[allow(clippy::too_many_arguments)]
fn search(
    pool: &mut TermPool,
    pipeline: &Pipeline,
    sums: &PipelineSummaries,
    cfg: &VerifyConfig,
    init: ComposedState,
    suspect: &dyn Fn(usize, &symexec::Segment) -> bool,
    unknown_marker: &dyn Fn(&symexec::Segment) -> bool,
    terminal_violates: bool,
    reach: &[bool],
    composed: &mut usize,
) -> SearchOutcome {
    let mut solver = BvSolver::with_conflict_budget(cfg.solver_conflict_budget);
    let mut stack = vec![Node {
        stage: 0,
        iter: 0,
        state: init,
    }];
    let mut saw_unknown = false;
    while let Some(node) = stack.pop() {
        let summary = &sums.stages[node.stage];
        let is_loop = summary.loop_iters.is_some();
        let max_iters = summary.loop_iters.unwrap_or(0);
        for (i, seg) in summary.segments.iter().enumerate() {
            if *composed >= cfg.max_composed_paths {
                return SearchOutcome::Budget;
            }
            let next = compose(pool, &node.state, &summary.input, seg, node.stage, i);
            if suspect(node.stage, seg) {
                *composed += 1;
                match check(pool, &mut solver, &next, &[]) {
                    Feas::Sat(m) => {
                        let cex = CounterExample::from_model(
                            pool,
                            &sums.input,
                            &m,
                            describe_outcome(pipeline, node.stage, seg),
                            next.trace.clone(),
                        );
                        return SearchOutcome::Violation(cex);
                    }
                    Feas::Unsat => continue,
                    Feas::Unknown => {
                        saw_unknown = true;
                        continue;
                    }
                }
            }
            if unknown_marker(seg) {
                *composed += 1;
                if !matches!(check(pool, &mut solver, &next, &[]), Feas::Unsat) {
                    saw_unknown = true;
                }
                continue;
            }
            match seg.outcome {
                SegOutcome::Drop | SegOutcome::Crash(_) | SegOutcome::FuelExhausted => {
                    // Non-suspect terminal for this property: ignore.
                    // (Crash segments are suspects under crash-freedom;
                    // under other properties the packet simply stops.)
                }
                SegOutcome::Emit(p) if is_loop && p == PORT_CONTINUE => {
                    *composed += 1;
                    if node.iter + 1 < max_iters {
                        match check(pool, &mut solver, &next, &[]) {
                            Feas::Sat(_) | Feas::Unknown => stack.push(Node {
                                stage: node.stage,
                                iter: node.iter + 1,
                                state: next,
                            }),
                            Feas::Unsat => {}
                        }
                    } else {
                        // Still continuing at the bound: proof blocker.
                        if !matches!(check(pool, &mut solver, &next, &[]), Feas::Unsat) {
                            saw_unknown = true;
                        }
                    }
                }
                SegOutcome::Emit(p) => {
                    let route = pipeline.stages[node.stage].resolve(p);
                    match route {
                        Route::Next | Route::To(_) => {
                            let target = match route {
                                Route::Next => node.stage + 1,
                                Route::To(s) => s,
                                _ => unreachable!(),
                            };
                            if target < sums.stages.len() && reach[target] {
                                *composed += 1;
                                match check(pool, &mut solver, &next, &[]) {
                                    Feas::Sat(_) | Feas::Unknown => stack.push(Node {
                                        stage: target,
                                        iter: 0,
                                        state: next,
                                    }),
                                    Feas::Unsat => {}
                                }
                            }
                        }
                        Route::Sink(_) if terminal_violates => {
                            *composed += 1;
                            match check(pool, &mut solver, &next, &[]) {
                                Feas::Sat(m) => {
                                    let cex = CounterExample::from_model(
                                        pool,
                                        &sums.input,
                                        &m,
                                        format!(
                                            "packet delivered via {} despite the filter property",
                                            summary.name
                                        ),
                                        next.trace.clone(),
                                    );
                                    return SearchOutcome::Violation(cex);
                                }
                                Feas::Unsat => {}
                                Feas::Unknown => saw_unknown = true,
                            }
                        }
                        Route::Sink(_) | Route::Drop => {}
                    }
                }
            }
        }
    }
    if saw_unknown {
        SearchOutcome::SolverUnknown
    } else {
        SearchOutcome::Clean
    }
}

fn describe_outcome(pipeline: &Pipeline, stage: usize, seg: &symexec::Segment) -> String {
    let name = &pipeline.stages[stage].element.name;
    match seg.outcome {
        SegOutcome::Crash(r) => {
            let prog = pipeline.stages[stage].element.program();
            let detail = match r {
                dpir::CrashReason::AssertFailed(m) | dpir::CrashReason::Explicit(m) => {
                    format!("{r}: \"{}\"", prog.assert_msgs[m as usize])
                }
                other => other.to_string(),
            };
            format!("{name} crashes: {detail}")
        }
        SegOutcome::FuelExhausted => format!("{name} exceeds the instruction budget"),
        SegOutcome::Emit(p) if p == PORT_CONTINUE => {
            format!("{name}'s loop does not terminate within its bound")
        }
        SegOutcome::Emit(p) => format!("{name} emits on port {p}"),
        SegOutcome::Drop => format!("{name} drops the packet"),
    }
}

/// Builds the step-1 summaries and an initial composed state whose
/// metadata is zero (packets enter the pipeline with fresh metadata).
fn prepare(
    pool: &mut TermPool,
    pipeline: &Pipeline,
    cfg: &VerifyConfig,
    mode: MapMode,
) -> Result<(PipelineSummaries, ComposedState), symexec::SymError> {
    let sums = summarize_pipeline(pool, pipeline, &cfg.sym, mode)?;
    let mut init = ComposedState::initial(&sums.input);
    let zero = pool.mk_const(dpir::META_WIDTH, 0);
    for m in &mut init.meta {
        *m = zero;
    }
    Ok((sums, init))
}

fn segment_count(sums: &PipelineSummaries) -> usize {
    sums.stages.iter().map(|s| s.segments.len()).sum()
}

/// Proves or disproves **crash-freedom** (§4) for `pipeline`, assuming
/// arbitrary packets and arbitrary configuration.
pub fn verify_crash_freedom(pipeline: &Pipeline, cfg: &VerifyConfig) -> VerifyReport {
    let mut pool = TermPool::new();
    let t0 = Instant::now();
    let (sums, init) = match prepare(&mut pool, pipeline, cfg, MapMode::Abstract) {
        Ok(x) => x,
        Err(e) => {
            return VerifyReport {
                property: "crash-freedom".into(),
                pipeline: pipeline.name.clone(),
                verdict: Verdict::Unknown(format!("step 1 aborted: {e}")),
                step1_states: 0,
                step1_segments: 0,
                suspects: 0,
                composed_paths: 0,
                step1_time: t0.elapsed(),
                step2_time: Default::default(),
            }
        }
    };
    let step1_time = t0.elapsed();
    let suspects: usize = sums
        .stages
        .iter()
        .map(|s| s.segments.iter().filter(|g| g.outcome.is_crash()).count())
        .sum();

    // Crash suspects, plus loop stations (we must establish that loops
    // converge within their bound to cover all iterations), plus any
    // fuel-exhausted step-1 segment (cannot be summarized past).
    let needs_visit = |k: usize| {
        let s = &sums.stages[k];
        s.loop_iters.is_some()
            || s.segments
                .iter()
                .any(|g| g.outcome.is_crash() || g.outcome == SegOutcome::FuelExhausted)
    };
    let reach = lookahead(&sums, needs_visit);

    let t1 = Instant::now();
    let mut composed = 0usize;
    let is_suspect = |_stage: usize, seg: &symexec::Segment| seg.outcome.is_crash();
    // A feasible fuel-exhausted segment means step 1 could not finish
    // summarizing that path: no crash was *observed*, but none can be
    // ruled out either — proof degrades to Unknown.
    let fuel = |seg: &symexec::Segment| seg.outcome == SegOutcome::FuelExhausted;
    let outcome = search(
        &mut pool, pipeline, &sums, cfg, init, &is_suspect, &fuel, false, &reach, &mut composed,
    );
    let verdict = match outcome {
        SearchOutcome::Clean => Verdict::Proved,
        SearchOutcome::Violation(cex) => Verdict::Disproved(cex),
        SearchOutcome::Budget => Verdict::Unknown("step-2 path budget exceeded".into()),
        SearchOutcome::SolverUnknown => Verdict::Unknown("solver budget exceeded".into()),
    };
    VerifyReport {
        property: "crash-freedom".into(),
        pipeline: pipeline.name.clone(),
        verdict,
        step1_states: sums.total_states,
        step1_segments: segment_count(&sums),
        suspects,
        composed_paths: composed,
        step1_time,
        step2_time: t1.elapsed(),
    }
}

/// Proves or disproves **bounded-execution** (§4): no packet executes
/// more than `imax` instructions. Loop-bound overruns and
/// fuel-exhausted segments are the suspects — a feasible one is an
/// (attacker-exploitable) unbounded path, as with §5.3 bugs #1/#2.
pub fn verify_bounded_execution(pipeline: &Pipeline, imax: u64, cfg: &VerifyConfig) -> VerifyReport {
    let mut pool = TermPool::new();
    let t0 = Instant::now();
    let (sums, init) = match prepare(&mut pool, pipeline, cfg, MapMode::Abstract) {
        Ok(x) => x,
        Err(e) => {
            return VerifyReport {
                property: "bounded-execution".into(),
                pipeline: pipeline.name.clone(),
                verdict: Verdict::Unknown(format!("step 1 aborted: {e}")),
                step1_states: 0,
                step1_segments: 0,
                suspects: 0,
                composed_paths: 0,
                step1_time: t0.elapsed(),
                step2_time: Default::default(),
            }
        }
    };
    let step1_time = t0.elapsed();

    // Suspects: fuel exhaustion in step 1, loop continuation at the
    // last composed iteration (detected via the iteration counter in
    // the engine — we mark *all* PORT_CONTINUE segments and let the
    // engine's iteration bound decide which instantiations are final),
    // and any composed path whose instruction total exceeds imax.
    let needs_visit = |_k: usize| true; // instruction totals grow everywhere
    let reach = lookahead(&sums, needs_visit);
    let suspects: usize = sums
        .stages
        .iter()
        .map(|s| {
            s.segments
                .iter()
                .filter(|g| g.outcome == SegOutcome::FuelExhausted)
                .count()
        })
        .sum();

    let t1 = Instant::now();
    let mut composed = 0usize;
    let outcome = search_bounded(
        &mut pool, pipeline, &sums, cfg, init, imax, &reach, &mut composed,
    );
    let verdict = match outcome {
        SearchOutcome::Clean => Verdict::Proved,
        SearchOutcome::Violation(cex) => Verdict::Disproved(cex),
        SearchOutcome::Budget => Verdict::Unknown("step-2 path budget exceeded".into()),
        SearchOutcome::SolverUnknown => Verdict::Unknown("solver budget exceeded".into()),
    };
    VerifyReport {
        property: format!("bounded-execution (imax={imax})"),
        pipeline: pipeline.name.clone(),
        verdict,
        step1_states: sums.total_states,
        step1_segments: segment_count(&sums),
        suspects,
        composed_paths: composed,
        step1_time,
        step2_time: t1.elapsed(),
    }
}

/// Like [`search`], specialized to bounded-execution: loop overruns and
/// instruction totals over `imax` are violations.
#[allow(clippy::too_many_arguments)]
fn search_bounded(
    pool: &mut TermPool,
    pipeline: &Pipeline,
    sums: &PipelineSummaries,
    cfg: &VerifyConfig,
    init: ComposedState,
    imax: u64,
    reach: &[bool],
    composed: &mut usize,
) -> SearchOutcome {
    let mut solver = BvSolver::with_conflict_budget(cfg.solver_conflict_budget);
    let mut stack = vec![Node {
        stage: 0,
        iter: 0,
        state: init,
    }];
    let mut saw_unknown = false;
    while let Some(node) = stack.pop() {
        let summary = &sums.stages[node.stage];
        let is_loop = summary.loop_iters.is_some();
        let max_iters = summary.loop_iters.unwrap_or(0);
        for (i, seg) in summary.segments.iter().enumerate() {
            if *composed >= cfg.max_composed_paths {
                return SearchOutcome::Budget;
            }
            let next = compose(pool, &node.state, &summary.input, seg, node.stage, i);
            // Instruction-budget violation or step-1 fuel exhaustion.
            let over_budget = next.instrs > imax;
            let fuel = seg.outcome == SegOutcome::FuelExhausted;
            if over_budget || fuel {
                *composed += 1;
                match check(pool, &mut solver, &next, &[]) {
                    Feas::Sat(m) => {
                        let what = if fuel {
                            describe_outcome(pipeline, node.stage, seg)
                        } else {
                            format!(
                                "path executes {} instructions (> imax={})",
                                next.instrs, imax
                            )
                        };
                        return SearchOutcome::Violation(CounterExample::from_model(
                            pool,
                            &sums.input,
                            &m,
                            what,
                            next.trace.clone(),
                        ));
                    }
                    Feas::Unsat => continue,
                    Feas::Unknown => {
                        saw_unknown = true;
                        continue;
                    }
                }
            }
            match seg.outcome {
                SegOutcome::Drop | SegOutcome::Crash(_) | SegOutcome::FuelExhausted => {}
                SegOutcome::Emit(p) if is_loop && p == PORT_CONTINUE => {
                    *composed += 1;
                    if node.iter + 1 >= max_iters {
                        // Loop still wants to continue at the bound: a
                        // bounded-execution suspect (bugs #1/#2 land
                        // here). Feasible ⇒ violation.
                        match check(pool, &mut solver, &next, &[]) {
                            Feas::Sat(m) => {
                                return SearchOutcome::Violation(CounterExample::from_model(
                                    pool,
                                    &sums.input,
                                    &m,
                                    describe_outcome(pipeline, node.stage, seg),
                                    next.trace.clone(),
                                ));
                            }
                            Feas::Unsat => {}
                            Feas::Unknown => saw_unknown = true,
                        }
                    } else {
                        match check(pool, &mut solver, &next, &[]) {
                            Feas::Sat(_) | Feas::Unknown => stack.push(Node {
                                stage: node.stage,
                                iter: node.iter + 1,
                                state: next,
                            }),
                            Feas::Unsat => {}
                        }
                    }
                }
                SegOutcome::Emit(p) => {
                    let route = pipeline.stages[node.stage].resolve(p);
                    if let Route::Next | Route::To(_) = route {
                        let target = match route {
                            Route::Next => node.stage + 1,
                            Route::To(s) => s,
                            _ => unreachable!(),
                        };
                        if target < sums.stages.len() && reach[target] {
                            *composed += 1;
                            match check(pool, &mut solver, &next, &[]) {
                                Feas::Sat(_) | Feas::Unknown => stack.push(Node {
                                    stage: target,
                                    iter: 0,
                                    state: next,
                                }),
                                Feas::Unsat => {}
                            }
                        }
                    }
                }
            }
        }
    }
    if saw_unknown {
        SearchOutcome::SolverUnknown
    } else {
        SearchOutcome::Clean
    }
}

/// A filtering property (§4): packets matching the header pattern must
/// never be delivered on a sink.
#[derive(Debug, Clone, Default)]
pub struct FilterProperty {
    /// Required source address.
    pub src_ip: Option<u32>,
    /// Required destination address.
    pub dst_ip: Option<u32>,
    /// Minimum packet length making the fields meaningful (default 38).
    pub min_len: u64,
}

impl FilterProperty {
    /// "Any packet with source IP `a` is dropped."
    pub fn src(a: u32) -> Self {
        FilterProperty {
            src_ip: Some(a),
            dst_ip: None,
            min_len: 38,
        }
    }
}

/// Proves or disproves a **filtering** property under the pipeline's
/// *specific configuration* (static maps summarized from their
/// configured contents).
pub fn verify_filtering(
    pipeline: &Pipeline,
    prop: &FilterProperty,
    cfg: &VerifyConfig,
) -> VerifyReport {
    let mut pool = TermPool::new();
    let t0 = Instant::now();
    let (sums, mut init) = match prepare(&mut pool, pipeline, cfg, MapMode::Tables) {
        Ok(x) => x,
        Err(e) => {
            return VerifyReport {
                property: "filtering".into(),
                pipeline: pipeline.name.clone(),
                verdict: Verdict::Unknown(format!("step 1 aborted: {e}")),
                step1_states: 0,
                step1_segments: 0,
                suspects: 0,
                composed_paths: 0,
                step1_time: t0.elapsed(),
                step2_time: Default::default(),
            }
        }
    };
    let step1_time = t0.elapsed();

    // Conjoin the property's header pattern onto the initial state.
    let min = pool.mk_const(16, prop.min_len.max(38));
    let c_len = pool.mk_ule(min, sums.input.pkt_len);
    init.constraint.push(c_len);
    if let Some(src) = prop.src_ip {
        for (i, b) in src.to_be_bytes().iter().enumerate() {
            let byte = sums.input.pkt_bytes[26 + i];
            let c = pool.mk_const(8, *b as u64);
            let eq = pool.mk_eq(byte, c);
            init.constraint.push(eq);
        }
    }
    if let Some(dst) = prop.dst_ip {
        for (i, b) in dst.to_be_bytes().iter().enumerate() {
            let byte = sums.input.pkt_bytes[30 + i];
            let c = pool.mk_const(8, *b as u64);
            let eq = pool.mk_eq(byte, c);
            init.constraint.push(eq);
        }
    }

    let reach = lookahead(&sums, |_| true);
    let t1 = Instant::now();
    let mut composed = 0usize;
    let never = |_: usize, _: &symexec::Segment| false;
    let fuel = |seg: &symexec::Segment| seg.outcome == SegOutcome::FuelExhausted;
    let outcome = search(
        &mut pool, pipeline, &sums, cfg, init, &never, &fuel, true, &reach, &mut composed,
    );
    let verdict = match outcome {
        SearchOutcome::Clean => Verdict::Proved,
        SearchOutcome::Violation(cex) => Verdict::Disproved(cex),
        SearchOutcome::Budget => Verdict::Unknown("step-2 path budget exceeded".into()),
        SearchOutcome::SolverUnknown => Verdict::Unknown("solver budget exceeded".into()),
    };
    VerifyReport {
        property: "filtering".into(),
        pipeline: pipeline.name.clone(),
        verdict,
        step1_states: sums.total_states,
        step1_segments: segment_count(&sums),
        suspects: 0,
        composed_paths: composed,
        step1_time,
        step2_time: t1.elapsed(),
    }
}

/// One entry of the longest-path report (§5.3).
#[derive(Debug)]
pub struct LongestPath {
    /// Exact instruction count.
    pub instrs: u64,
    /// A packet exercising the path.
    pub packet: CounterExample,
}

/// Finds the `n` longest feasible pipeline paths and packets that
/// trigger them — the adversarial-workload construction of §5.3.
///
/// Implements the paper's step-2 search: segments are considered in
/// decreasing instruction count via a best-first search whose
/// heuristic (maximum remaining instructions per stage) is admissible,
/// so paths pop in true length order.
pub fn longest_paths(pipeline: &Pipeline, n: usize, cfg: &VerifyConfig) -> Vec<LongestPath> {
    let mut pool = TermPool::new();
    let (sums, init) = match prepare(&mut pool, pipeline, cfg, MapMode::Abstract) {
        Ok(x) => x,
        Err(_) => return Vec::new(),
    };
    // Optimistic per-stage remaining cost.
    let nst = sums.stages.len();
    let mut stage_max = vec![0u64; nst];
    for (k, s) in sums.stages.iter().enumerate() {
        let mx = s.segments.iter().map(|g| g.instrs).max().unwrap_or(0);
        stage_max[k] = match s.loop_iters {
            Some(t) => mx * t as u64,
            None => mx,
        };
    }
    let mut suffix = vec![0u64; nst + 1];
    for k in (0..nst).rev() {
        suffix[k] = suffix[k + 1] + stage_max[k];
    }

    struct QNode {
        f: u64,
        stage: usize,
        iter: u32,
        state: ComposedState,
        terminal: bool,
    }
    impl PartialEq for QNode {
        fn eq(&self, o: &Self) -> bool {
            self.f == o.f
        }
    }
    impl Eq for QNode {}
    impl PartialOrd for QNode {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl Ord for QNode {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            self.f.cmp(&o.f)
        }
    }

    let mut solver = BvSolver::with_conflict_budget(cfg.solver_conflict_budget);
    let mut heap: BinaryHeap<QNode> = BinaryHeap::new();
    heap.push(QNode {
        f: suffix[0],
        stage: 0,
        iter: 0,
        state: init,
    terminal: false,
    });
    let mut out = Vec::new();
    let mut composed = 0usize;
    while let Some(node) = heap.pop() {
        if out.len() >= n || composed >= cfg.max_composed_paths {
            break;
        }
        if node.terminal {
            // Admissible heuristic ⇒ this is the next-longest path.
            if let Feas::Sat(m) = check(&mut pool, &mut solver, &node.state, &[]) {
                out.push(LongestPath {
                    instrs: node.state.instrs,
                    packet: CounterExample::from_model(
                        &pool,
                        &sums.input,
                        &m,
                        format!("{}-instruction path", node.state.instrs),
                        node.state.trace.clone(),
                    ),
                });
            }
            continue;
        }
        let summary = &sums.stages[node.stage];
        let is_loop = summary.loop_iters.is_some();
        let max_iters = summary.loop_iters.unwrap_or(0);
        for (i, seg) in summary.segments.iter().enumerate() {
            if composed >= cfg.max_composed_paths {
                break;
            }
            let next = compose(&mut pool, &node.state, &summary.input, seg, node.stage, i);
            composed += 1;
            let feasible = !matches!(
                check(&mut pool, &mut solver, &next, &[]),
                Feas::Unsat
            );
            if !feasible {
                continue;
            }
            match seg.outcome {
                SegOutcome::Drop | SegOutcome::Crash(_) | SegOutcome::FuelExhausted => {
                    let f = next.instrs;
                    heap.push(QNode {
                        f,
                        stage: node.stage,
                        iter: 0,
                        state: next,
                        terminal: true,
                    });
                }
                SegOutcome::Emit(p) if is_loop && p == PORT_CONTINUE => {
                    if node.iter + 1 < max_iters {
                        let rem = (max_iters - node.iter - 1) as u64 * stage_max[node.stage]
                            / max_iters.max(1) as u64;
                        let f = next.instrs + rem + suffix[node.stage + 1];
                        heap.push(QNode {
                            f,
                            stage: node.stage,
                            iter: node.iter + 1,
                            state: next,
                            terminal: false,
                        });
                    }
                }
                SegOutcome::Emit(p) => {
                    let route = pipeline.stages[node.stage].resolve(p);
                    match route {
                        Route::Next | Route::To(_) => {
                            let target = match route {
                                Route::Next => node.stage + 1,
                                Route::To(s) => s,
                                _ => unreachable!(),
                            };
                            if target < nst {
                                let f = next.instrs + suffix[target];
                                heap.push(QNode {
                                    f,
                                    stage: target,
                                    iter: 0,
                                    state: next,
                                    terminal: false,
                                });
                            } else {
                                let f = next.instrs;
                                heap.push(QNode {
                                    f,
                                    stage: node.stage,
                                    iter: 0,
                                    state: next,
                                    terminal: true,
                                });
                            }
                        }
                        Route::Sink(_) | Route::Drop => {
                            let f = next.instrs;
                            heap.push(QNode {
                                f,
                                stage: node.stage,
                                iter: 0,
                                state: next,
                                terminal: true,
                            });
                        }
                    }
                }
            }
        }
    }
    out
}
