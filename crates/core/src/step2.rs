//! Verification step 2: composing suspect paths and deciding
//! feasibility — plus the deprecated pre-session property drivers.
//!
//! The path search is written once (`search`) and parameterized by
//! `PropKind`; the sequential engine and the parallel frontier in
//! [`crate::parallel`] share it — dispatched from one code path in
//! [`crate::session::Verifier`] — so the two can never diverge on
//! property semantics. The `verify_*` free functions here are thin
//! deprecated wrappers over single-property sessions.

use crate::compose::{compose, ComposedState};
use crate::cores::{CoreStats, Pruner};
use crate::prefilter::Prefilter;
use crate::report::{CounterExample, Verdict, VerifyReport};
use crate::session::{CustomProperty, Property, Verifier};
use crate::summary::PipelineSummaries;
use bvsolve::{BvSolver, SatVerdict, SolveSession, SolverLayerStats, TermPool};
use dataplane::{Pipeline, Route};
use dpir::PORT_CONTINUE;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use symexec::{SegOutcome, Segment, SymConfig, SymInput};

/// Configuration of a verification run.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Step-1 symbolic execution settings.
    pub sym: SymConfig,
    /// Step-2 budget: maximum paths composed before giving up
    /// (the analogue of the paper's 12-hour wall).
    pub max_composed_paths: usize,
    /// CDCL conflict budget per step-2 feasibility query.
    pub solver_conflict_budget: u64,
    /// Whether step-2 queries run on an incremental
    /// [`bvsolve::SolveSession`] — persistent bit-blasting,
    /// constraints asserted under activation literals as the search
    /// composes and retired as it backtracks — instead of a fresh
    /// solver per query. Every decided (Sat/Unsat) query answers
    /// identically either way; only queries that exhaust
    /// [`VerifyConfig::solver_conflict_budget`] may degrade to
    /// Unknown in one mode and not the other, since solver reuse
    /// changes how many conflicts a given query needs. `false` is
    /// the A/B baseline for the `incremental` bench ablation.
    pub incremental: bool,
    /// Whether the step-2 search learns **UNSAT cores** from refuted
    /// queries and skips any later query whose constraint set subsumes
    /// a known core (see [`crate::CoreStore`]). Pruning only ever
    /// replaces queries the solver would answer `Unsat`, so on runs
    /// where every query is decided — the normal case, far from
    /// [`VerifyConfig::solver_conflict_budget`] — verdicts,
    /// counterexample bytes and composed-path counts are equivalent
    /// by construction (pruned compositions still count; only the
    /// solver call is skipped). Near the budget the caveat is the
    /// [`VerifyConfig::incremental`] one: a query the unpruned run
    /// answered `Unknown` may be pruned to a definite `Unsat`, and
    /// skipped solves change the solver state behind later
    /// budget-limited queries. A [`crate::session::Verifier`] keeps
    /// one store per map mode, so cores learned proving one property
    /// prune the session's other properties too; parallel workers
    /// share the session store behind a mutex, publishing at task
    /// boundaries. `false` is the A/B baseline for the `core_pruning`
    /// bench ablation.
    pub core_pruning: bool,
    /// Whether step-1 summarization runs on the statically simplified
    /// programs ([`dpir::analysis::simplify()`]) instead of the raw
    /// ones. The simplifier is verdict-preserving by construction —
    /// it only applies pool-exact rewrites (folds whose result the
    /// term pool would intern to the identical term) and deletes
    /// blocks no execution reaches — so verdicts, counterexample
    /// bytes and composed-path semantics match the raw run; the
    /// exported [`dpir::Facts`] additionally let step 1 skip crash
    /// forks at proven-safe access sites and step 2 refute
    /// compositions earlier via [`ComposedState::assumed`].
    /// Simplified programs hash differently whenever any fact was
    /// derived (the `facts` field participates in the fingerprint),
    /// so [`crate::SummaryStore`] entries never mix the two modes.
    /// `false` is the A/B baseline for the `static_simplify` bench
    /// ablation.
    pub static_simplify: bool,
    /// `Some(n)`: blast-layer step-2 queries that exhaust
    /// [`VerifyConfig::portfolio_escalation`] conflicts
    /// single-threaded are re-run as a **portfolio race** of `n`
    /// diversified clones of the session solver (first decided clone
    /// wins and cancels the rest; glue clauses the racers learn flow
    /// back into the session — see
    /// [`bvsolve::SolveSession::set_portfolio`]). Requires
    /// [`VerifyConfig::incremental`]; the fresh-solver baseline
    /// ignores it. Verdicts, counterexample bytes and composed-path
    /// counts are unchanged: decided answers are a property of the
    /// query, races only move wall time, and reported packets go
    /// through canonical minimal-model extraction
    /// (`QuerySolver::confirm_model`) regardless of which racer won.
    /// The one widening is the usual budget caveat — a race spends
    /// more total conflicts than one solver, so a portfolio run may
    /// decide a query the single-threaded run left `Unknown` (never
    /// the reverse). On a host with a single available core the race
    /// is auto-disabled — the clones could only time-slice against
    /// the attempt they are meant to overtake.
    /// `None` (the default) keeps every query single-threaded.
    pub portfolio: Option<usize>,
    /// Conflicts granted to the single-threaded attempt before a
    /// query counts as *hard* and escalates to a portfolio race
    /// (inert unless [`VerifyConfig::portfolio`] is set). Cheap
    /// queries — the overwhelming majority — never pay the clone and
    /// thread-spawn cost.
    pub portfolio_escalation: u64,
    /// Whether the concrete-execution prefilter runs in front of the
    /// step-2 solver: composed constraints are evaluated on a small
    /// deterministic packet corpus, and a packet satisfying every
    /// conjunct decides the query `Sat` by exhibition — no blast, no
    /// CDCL (counters in [`crate::PrefilterStats`]). Sound by
    /// construction (it can only accelerate SAT answers) and
    /// deterministic (reported packets go through canonical
    /// minimal-model extraction, so counterexample bytes match a run
    /// with the filter off). `false` is the A/B baseline.
    pub concrete_prefilter: bool,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            sym: SymConfig::default(),
            max_composed_paths: 1 << 20,
            solver_conflict_budget: 200_000,
            incremental: true,
            core_pruning: true,
            static_simplify: false,
            portfolio: None,
            portfolio_escalation: 2_000,
            concrete_prefilter: false,
        }
    }
}

/// A search node: position in the pipeline plus the composed state.
#[derive(Clone)]
pub(crate) struct Node {
    pub(crate) stage: usize,
    pub(crate) iter: u32,
    pub(crate) state: ComposedState,
}

pub(crate) enum Feas {
    Sat(bvsolve::Model),
    Unsat,
    Unknown,
}

/// The step-2 query engine: an incremental [`SolveSession`] (the
/// default) or a fresh-per-query [`BvSolver`]
/// ([`VerifyConfig::incremental`] `= false`, the A/B baseline). Both
/// decide the same conjunction queries through the same cheap layers,
/// so decided (Sat/Unsat) verdicts are identical — only
/// budget-exhausted Unknowns can differ between modes (see
/// [`VerifyConfig::incremental`]); the session additionally reuses
/// blasted prefixes and learnt clauses across the query stream.
pub(crate) enum QuerySolver {
    Fresh(BvSolver),
    Session(Box<SolveSession>),
}

impl QuerySolver {
    pub(crate) fn new(cfg: &VerifyConfig) -> Self {
        if cfg.incremental {
            // Note: drop-one core minimization stays off here — on the
            // step-2 stream the analyze-final cores are already sharp
            // enough that the capped re-solves cost far more than the
            // extra subsumptions they buy (measured 2-3x slower on the
            // refutation-heavy ablation with no extra hits).
            let mut session = SolveSession::with_conflict_budget(cfg.solver_conflict_budget);
            // No pruner will read the cores, so don't build them.
            session.set_core_extraction(cfg.core_pruning);
            // Racing diversified clones only buys wall time when a
            // second core can actually run one; on a single-core host
            // the clones would time-slice against the main attempt and
            // strictly lose to just continuing it. Auto-disable there
            // (verdict-invariant: races never change decided answers).
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            if let Some(racers) = cfg.portfolio {
                if cores > 1 {
                    session.set_portfolio(racers, cfg.portfolio_escalation);
                }
            }
            QuerySolver::Session(Box::new(session))
        } else {
            // Sessions produce cores for free (assumption-driven
            // queries); the fresh baseline pays a second solve per
            // UNSAT for them, so only ask when pruning will use them.
            let solver = BvSolver::with_conflict_budget(cfg.solver_conflict_budget);
            QuerySolver::Fresh(if cfg.core_pruning {
                solver.with_cores()
            } else {
                solver
            })
        }
    }

    /// Decides satisfiability of the conjunction of `cs`. The session
    /// syncs its assertion stack to `cs` (retire past the common
    /// prefix, assert the rest); the fresh solver rebuilds from
    /// scratch.
    pub(crate) fn check_terms(
        &mut self,
        pool: &mut TermPool,
        cs: &[bvsolve::TermId],
    ) -> SatVerdict {
        match self {
            QuerySolver::Fresh(s) => s.check(pool, cs),
            QuerySolver::Session(s) => s.check_constraints(pool, cs),
        }
    }

    /// Layer/reuse statistics accumulated so far.
    pub(crate) fn stats(&self) -> SolverLayerStats {
        match self {
            QuerySolver::Fresh(s) => s.stats(),
            QuerySolver::Session(s) => s.stats(),
        }
    }

    /// **Canonical** model extraction for a *winning* query: the
    /// reported packet is the lexicographically-minimal witness of the
    /// path `constraint` alone, over `(length, byte 0, byte 1, …)`.
    ///
    /// Minimality makes the bytes a pure function of the constraint's
    /// *semantics* — not of solver history (learnt clauses, saved
    /// phases), not of [`ComposedState::assumed`] facts, not of the
    /// prefilter corpus, and not of the term pool's node orientation
    /// (pools warmed across config updates intern the same composition
    /// with different [`bvsolve::TermId`] numbering, which flips
    /// commutative operand order and thereby CNF variable order — an
    /// arbitrary-model extraction would report different, equally
    /// valid, packets). Every engine — fresh, incremental, parallel,
    /// portfolio, core-pruned, simplified, churn-warmed — therefore
    /// reports byte-identical counterexamples for the same violation.
    ///
    /// Cost: one solve plus ~`log₂(range)` assumption re-solves per
    /// reported field on a private [`SolveSession`] (circuits blasted
    /// once, cheap layers first), paid once per *winning* violation.
    /// Falls back to the in-flight model (equally valid, possibly
    /// non-canonical) if any minimization step exhausts the conflict
    /// budget.
    pub(crate) fn confirm_model(
        &self,
        pool: &mut TermPool,
        cfg: &VerifyConfig,
        state: &ComposedState,
        input: &SymInput,
        inflight: bvsolve::Model,
    ) -> bvsolve::Model {
        canonical_model(pool, cfg, &state.constraint, input).unwrap_or(inflight)
    }
}

/// The lexicographically-minimal model of `constraint` over the
/// reported fields, in report order: packet length first, then each
/// byte below the minimized length. See
/// [`QuerySolver::confirm_model`].
fn canonical_model(
    pool: &mut TermPool,
    cfg: &VerifyConfig,
    constraint: &[bvsolve::TermId],
    input: &SymInput,
) -> Option<bvsolve::Model> {
    let mut s = SolveSession::with_conflict_budget(cfg.solver_conflict_budget);
    for &c in constraint {
        s.assert_constraint(c);
    }
    // `current` always satisfies the full active set (original
    // constraint plus every pin so far) — it seeds each field's upper
    // bound, so the search invariant "some model of the active set
    // gives `t` a value in [lo, hi]" holds throughout: Sat tightens
    // hi to a freshly-witnessed value, Unsat of `t <= mid` raises lo
    // past mid. A cheap-layer Sat carries an empty model (value 0) —
    // sound, it only fires when the active conjunction is
    // tautological, so every value is achievable.
    let mut current = match s.check(pool) {
        SatVerdict::Sat(m) => m,
        _ => return None,
    };
    let mut minimize = |pool: &mut TermPool, t, v: u32, w| -> Option<u64> {
        let mut hi = current.var(v);
        let mut lo = 0u64;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let bound = pool.mk_const(w, mid);
            let le = pool.mk_ule(t, bound);
            match s.check_assuming(pool, &[le]) {
                SatVerdict::Sat(m) => {
                    hi = m.var(v).min(mid);
                    current = m;
                }
                SatVerdict::Unsat(_) => lo = mid + 1,
                SatVerdict::Unknown | SatVerdict::Interrupted => return None,
            }
        }
        let val = pool.mk_const(w, lo);
        let pin = pool.mk_eq(t, val);
        s.assert_constraint(pin);
        Some(lo)
    };
    let mut out = bvsolve::Assignment::new();
    let len = minimize(pool, input.pkt_len, input.len_var, 16)?;
    out.set(input.len_var, len);
    let last = (len as usize).min(input.pkt_bytes.len());
    for i in 0..last {
        let b = minimize(pool, input.pkt_bytes[i], input.pkt_byte_vars[i], 8)?;
        out.set(input.pkt_byte_vars[i], b);
    }
    Some(bvsolve::Model::from_assignment(out))
}

/// One feasibility query, with two short-circuit layers in front of
/// the solver: the **concrete prefilter** decides trivially feasible
/// states `Sat` by exhibiting a corpus packet, and the
/// **conflict-driven pruner** refutes any constraint set subsuming a
/// learned UNSAT core (`subtree` marks continuation nodes, whose skip
/// prunes a whole search subtree). Every solver `Unsat` feeds its
/// core back into the pruner.
pub(crate) fn check(
    pool: &mut TermPool,
    solver: &mut QuerySolver,
    pruner: &mut Pruner,
    prefilter: &mut Prefilter,
    state: &ComposedState,
    subtree: bool,
) -> Feas {
    // Conjoin the statically proven facts (`assumed`) for feasibility
    // only: they are implied by `constraint` on every model, so
    // satisfiability is unchanged, but the per-conjunct cheap layers
    // can refute more compositions without the CDCL core. Pruning on
    // the combined set is equally sound — an UNSAT subset of
    // constraint ∧ assumed makes `constraint` alone UNSAT. Model
    // extraction (and [`QuerySolver::confirm_model`]) stays on
    // `constraint`, so counterexample bytes are byte-identical to a
    // run without facts.
    let combined: Vec<bvsolve::TermId>;
    let cs: &[bvsolve::TermId] = if state.assumed.is_empty() {
        &state.constraint
    } else {
        combined = state
            .constraint
            .iter()
            .chain(state.assumed.iter())
            .copied()
            .collect();
        &combined
    };
    // A corpus packet satisfying every conjunct is a sound Sat — and
    // it cannot overlap the pruner (a concretely satisfied set has no
    // UNSAT subset), so probing first never costs a core hit.
    if let Some(a) = prefilter.try_sat(pool, cs) {
        return Feas::Sat(bvsolve::Model::from_assignment(a.clone()));
    }
    if pruner.known_unsat(cs, subtree) {
        return Feas::Unsat;
    }
    match solver.check_terms(pool, cs) {
        SatVerdict::Sat(m) => {
            // Adopt the model: sibling paths share prefixes, so this
            // packet likely decides the next extension check too.
            prefilter.learn(m.assignment());
            Feas::Sat(m)
        }
        SatVerdict::Unsat(infeasibility) => {
            pruner.learn(infeasibility.core);
            Feas::Unsat
        }
        // A session-level interrupt surfaces like a budget Unknown:
        // the query was cancelled, not decided.
        SatVerdict::Unknown | SatVerdict::Interrupted => Feas::Unknown,
    }
}

/// Whether any stage ≥ `k` can still host a property violation.
pub(crate) fn lookahead(sums: &PipelineSummaries, is_suspect: impl Fn(usize) -> bool) -> Vec<bool> {
    let n = sums.stages.len();
    let mut v = vec![false; n + 1];
    for k in (0..n).rev() {
        v[k] = v[k + 1] || is_suspect(k);
    }
    v
}

/// Internal search result.
pub(crate) enum SearchOutcome {
    Clean,
    Violation(CounterExample),
    Budget,
    SolverUnknown,
}

/// Which §4 property the search decides. Encodes, for each segment
/// event along a composed path, whether it is a *violation suspect* (a
/// feasible instance disproves the property), a *proof blocker* (a
/// feasible instance degrades a proof to Unknown without being a
/// violation), or inert.
pub(crate) enum PropKind {
    /// No packet may terminate the pipeline abnormally.
    Crash,
    /// No packet may execute more than `imax` instructions.
    Bounded {
        /// The instruction bound.
        imax: u64,
    },
    /// No packet matching the property pattern (conjoined onto the
    /// initial state) may be delivered on a sink.
    Filter,
    /// A user-defined property (see [`crate::session::CustomProperty`]).
    Custom(Arc<dyn CustomProperty>),
}

impl PropKind {
    /// `Some(description)` when `seg`, composed into `next`, violates
    /// the property if feasible.
    pub(crate) fn violation(
        &self,
        pipeline: &Pipeline,
        stage: usize,
        seg: &Segment,
        next: &ComposedState,
    ) -> Option<String> {
        match self {
            PropKind::Crash => seg
                .outcome
                .is_crash()
                .then(|| describe_outcome(pipeline, stage, seg)),
            PropKind::Bounded { imax } => {
                if seg.outcome == SegOutcome::FuelExhausted {
                    // Step 1 could not finish this path: if reachable,
                    // an (attacker-exploitable) unbounded path.
                    Some(describe_outcome(pipeline, stage, seg))
                } else if next.instrs > *imax {
                    Some(format!(
                        "path executes {} instructions (> imax={})",
                        next.instrs, imax
                    ))
                } else {
                    None
                }
            }
            PropKind::Filter => None,
            PropKind::Custom(c) => c.violation(pipeline, stage, seg, next),
        }
    }

    /// Whether a feasible instance of `seg` blocks a full proof
    /// (step-1 fuel exhaustion: the summary is incomplete past it).
    pub(crate) fn blocker(&self, seg: &Segment) -> bool {
        match self {
            // Under Bounded, fuel exhaustion is already a violation.
            PropKind::Bounded { .. } => false,
            PropKind::Crash | PropKind::Filter => seg.outcome == SegOutcome::FuelExhausted,
            PropKind::Custom(c) => c.blocker(seg),
        }
    }

    /// Whether a loop still continuing at its composition bound is a
    /// violation (bounded-execution: §5.3 bugs #1/#2 land here) rather
    /// than a proof blocker.
    pub(crate) fn loop_overrun_violates(&self) -> bool {
        match self {
            PropKind::Bounded { .. } => true,
            PropKind::Crash | PropKind::Filter => false,
            PropKind::Custom(c) => c.loop_overrun_violates(),
        }
    }

    /// Whether a packet *leaving* the pipeline via a sink violates the
    /// property (filtering).
    pub(crate) fn sink_violates(&self) -> bool {
        match self {
            PropKind::Filter => true,
            PropKind::Crash | PropKind::Bounded { .. } => false,
            PropKind::Custom(c) => c.sink_violates(),
        }
    }
}

/// How one composed segment affects the search — the single
/// classification point shared by the sequential [`search`] and the
/// parallel frontier expansion, so the two cannot diverge on property
/// semantics.
pub(crate) enum StepEvent {
    /// Feasible ⇒ the property is violated, with this description.
    ViolationCheck(String, ComposedState),
    /// Feasible ⇒ no full proof (Unknown), without being a violation.
    BlockerCheck(ComposedState),
    /// Continue exploring from this node (next loop iteration, next
    /// stage, or jump target), if feasible.
    Continue(Node),
    /// Dead end for this property.
    Inert,
}

/// Composes segment `i` of `node`'s stage onto `node` and classifies
/// the result under `kind`. Loops: a segment still requesting another
/// iteration at the composed-iteration bound is either a violation
/// (bounded-execution) or a proof blocker (crashes could hide in
/// uncovered iterations). With the bound set to the packet-size-derived
/// maximum (§3.2: "the number of loop iterations is bounded by the
/// maximum packet size"), convergent loops make that branch infeasible
/// and full proofs go through.
#[allow(clippy::too_many_arguments)]
pub(crate) fn classify(
    pool: &mut TermPool,
    pipeline: &Pipeline,
    sums: &PipelineSummaries,
    kind: &PropKind,
    node: &Node,
    i: usize,
    seg: &Segment,
    reach: &[bool],
) -> StepEvent {
    let summary = &sums.stages[node.stage];
    let is_loop = summary.loop_iters.is_some();
    let max_iters = summary.loop_iters.unwrap_or(0);
    let next = compose(pool, &node.state, &summary.input, seg, node.stage, i);
    if let Some(what) = kind.violation(pipeline, node.stage, seg, &next) {
        return StepEvent::ViolationCheck(what, next);
    }
    if kind.blocker(seg) {
        return StepEvent::BlockerCheck(next);
    }
    match seg.outcome {
        SegOutcome::Drop | SegOutcome::Crash(_) | SegOutcome::FuelExhausted => {
            // Non-suspect terminal for this property: ignore.
            // (Crash segments are suspects under crash-freedom; under
            // other properties the packet simply stops.)
            StepEvent::Inert
        }
        SegOutcome::Emit(p) if is_loop && p == PORT_CONTINUE => {
            if node.iter + 1 < max_iters {
                StepEvent::Continue(Node {
                    stage: node.stage,
                    iter: node.iter + 1,
                    state: next,
                })
            } else if kind.loop_overrun_violates() {
                StepEvent::ViolationCheck(describe_outcome(pipeline, node.stage, seg), next)
            } else {
                // Still continuing at the bound: proof blocker.
                StepEvent::BlockerCheck(next)
            }
        }
        SegOutcome::Emit(p) => {
            let route = pipeline.stages[node.stage].resolve(p);
            match route {
                Route::Next | Route::To(_) => {
                    let target = match route {
                        Route::Next => node.stage + 1,
                        Route::To(s) => s,
                        _ => unreachable!(),
                    };
                    if target < sums.stages.len() && reach[target] {
                        StepEvent::Continue(Node {
                            stage: target,
                            iter: 0,
                            state: next,
                        })
                    } else {
                        StepEvent::Inert
                    }
                }
                Route::Sink(_) if kind.sink_violates() => {
                    StepEvent::ViolationCheck(sink_violation_desc(&summary.name), next)
                }
                Route::Sink(_) | Route::Drop => StepEvent::Inert,
            }
        }
    }
}

/// Step-2 DFS over composed paths, from an arbitrary initial worklist.
///
/// Segment events come from [`classify`]; this function adds the
/// solver: violation checks return counterexamples, blocker checks
/// degrade proofs to Unknown, continuations are feasibility-pruned
/// before they are pushed.
///
/// `composed` is shared with concurrent searches in the parallel
/// driver, so the path budget is global; counts near the budget edge
/// are approximate under concurrency.
#[allow(clippy::too_many_arguments)]
pub(crate) fn search(
    pool: &mut TermPool,
    solver: &mut QuerySolver,
    pruner: &mut Pruner,
    prefilter: &mut Prefilter,
    pipeline: &Pipeline,
    sums: &PipelineSummaries,
    cfg: &VerifyConfig,
    kind: &PropKind,
    mut stack: Vec<Node>,
    reach: &[bool],
    composed: &AtomicUsize,
) -> SearchOutcome {
    let mut saw_unknown = false;
    while let Some(node) = stack.pop() {
        for (i, seg) in sums.stages[node.stage].segments.iter().enumerate() {
            if composed.load(Ordering::Relaxed) >= cfg.max_composed_paths {
                return SearchOutcome::Budget;
            }
            match classify(pool, pipeline, sums, kind, &node, i, seg, reach) {
                StepEvent::ViolationCheck(what, next) => {
                    composed.fetch_add(1, Ordering::Relaxed);
                    match check(pool, solver, pruner, prefilter, &next, false) {
                        Feas::Sat(m) => {
                            let m = solver.confirm_model(pool, cfg, &next, &sums.input, m);
                            return SearchOutcome::Violation(CounterExample::from_model(
                                pool,
                                &sums.input,
                                &m,
                                what,
                                next.trace.clone(),
                            ));
                        }
                        Feas::Unsat => {}
                        Feas::Unknown => saw_unknown = true,
                    }
                }
                StepEvent::BlockerCheck(next) => {
                    composed.fetch_add(1, Ordering::Relaxed);
                    if !matches!(
                        check(pool, solver, pruner, prefilter, &next, false),
                        Feas::Unsat
                    ) {
                        saw_unknown = true;
                    }
                }
                StepEvent::Continue(n) => {
                    composed.fetch_add(1, Ordering::Relaxed);
                    match check(pool, solver, pruner, prefilter, &n.state, true) {
                        Feas::Sat(_) | Feas::Unknown => stack.push(n),
                        Feas::Unsat => {}
                    }
                }
                StepEvent::Inert => {}
            }
        }
    }
    if saw_unknown {
        SearchOutcome::SolverUnknown
    } else {
        SearchOutcome::Clean
    }
}

pub(crate) fn sink_violation_desc(stage_name: &str) -> String {
    format!("packet delivered via {stage_name} despite the filter property")
}

pub(crate) fn describe_outcome(pipeline: &Pipeline, stage: usize, seg: &Segment) -> String {
    let name = &pipeline.stages[stage].element.name;
    match seg.outcome {
        SegOutcome::Crash(r) => {
            let prog = pipeline.stages[stage].element.program();
            let detail = match r {
                dpir::CrashReason::AssertFailed(m) | dpir::CrashReason::Explicit(m) => {
                    format!("{r}: \"{}\"", prog.assert_msgs[m as usize])
                }
                other => other.to_string(),
            };
            format!("{name} crashes: {detail}")
        }
        SegOutcome::FuelExhausted => format!("{name} exceeds the instruction budget"),
        SegOutcome::Emit(p) if p == PORT_CONTINUE => {
            format!("{name}'s loop does not terminate within its bound")
        }
        SegOutcome::Emit(p) => format!("{name} emits on port {p}"),
        SegOutcome::Drop => format!("{name} drops the packet"),
    }
}

/// The initial composed state for `sums`: metadata zeroed.
pub(crate) fn make_initial(pool: &mut TermPool, sums: &PipelineSummaries) -> ComposedState {
    let mut init = ComposedState::initial(&sums.input);
    let zero = pool.mk_const(dpir::META_WIDTH, 0);
    for m in &mut init.meta {
        *m = zero;
    }
    init
}

pub(crate) fn segment_count(sums: &PipelineSummaries) -> usize {
    sums.stages.iter().map(|s| s.segments.len()).sum()
}

/// A step-1 failure report shared by every driver.
pub(crate) fn aborted_report(
    property: &str,
    pipeline: &Pipeline,
    e: symexec::SymError,
    t0: Instant,
) -> VerifyReport {
    VerifyReport {
        property: property.into(),
        pipeline: pipeline.name.clone(),
        verdict: Verdict::Unknown(format!("step 1 aborted: {e}")),
        step1_states: 0,
        step1_segments: 0,
        suspects: 0,
        composed_paths: 0,
        solver: SolverLayerStats::default(),
        cores: CoreStats::default(),
        summary: Default::default(),
        static_stats: Default::default(),
        prefilter: Default::default(),
        step1_time: t0.elapsed(),
        step2_time: Default::default(),
    }
}

/// Crash-freedom suspect count after step 1.
pub(crate) fn crash_suspects(sums: &PipelineSummaries) -> usize {
    sums.stages
        .iter()
        .map(|s| s.segments.iter().filter(|g| g.outcome.is_crash()).count())
        .sum()
}

/// Crash-freedom reachability: crash suspects, plus loop stations (we
/// must establish that loops converge within their bound to cover all
/// iterations), plus any fuel-exhausted step-1 segment (cannot be
/// summarized past).
pub(crate) fn crash_reach(sums: &PipelineSummaries) -> Vec<bool> {
    lookahead(sums, |k| {
        let s = &sums.stages[k];
        s.loop_iters.is_some()
            || s.segments
                .iter()
                .any(|g| g.outcome.is_crash() || g.outcome == SegOutcome::FuelExhausted)
    })
}

/// Bounded-execution suspect count after step 1.
pub(crate) fn bounded_suspects(sums: &PipelineSummaries) -> usize {
    sums.stages
        .iter()
        .map(|s| {
            s.segments
                .iter()
                .filter(|g| g.outcome == SegOutcome::FuelExhausted)
                .count()
        })
        .sum()
}

pub(crate) fn verdict_of(outcome: SearchOutcome) -> Verdict {
    match outcome {
        SearchOutcome::Clean => Verdict::Proved,
        SearchOutcome::Violation(cex) => Verdict::Disproved(cex),
        SearchOutcome::Budget => Verdict::Unknown("step-2 path budget exceeded".into()),
        SearchOutcome::SolverUnknown => Verdict::Unknown("solver budget exceeded".into()),
    }
}

/// Proves or disproves **crash-freedom** (§4) for `pipeline`, assuming
/// arbitrary packets and arbitrary configuration.
#[deprecated(
    since = "0.2.0",
    note = "use `Verifier::new(p).check(Property::CrashFreedom)` — a session \
            reuses step-1 summaries across properties (see the README \
            migration table)"
)]
pub fn verify_crash_freedom(pipeline: &Pipeline, cfg: &VerifyConfig) -> VerifyReport {
    Verifier::new(pipeline)
        .config(cfg.clone())
        .check(Property::CrashFreedom)
        .expect_verify()
}

/// Proves or disproves **bounded-execution** (§4): no packet executes
/// more than `imax` instructions. Loop-bound overruns and
/// fuel-exhausted segments are the suspects — a feasible one is an
/// (attacker-exploitable) unbounded path, as with §5.3 bugs #1/#2.
#[deprecated(
    since = "0.2.0",
    note = "use `Verifier::new(p).check(Property::Bounded { imax })` — a \
            session reuses step-1 summaries across properties (see the \
            README migration table)"
)]
pub fn verify_bounded_execution(
    pipeline: &Pipeline,
    imax: u64,
    cfg: &VerifyConfig,
) -> VerifyReport {
    Verifier::new(pipeline)
        .config(cfg.clone())
        .check(Property::Bounded { imax })
        .expect_verify()
}

/// A filtering property (§4): packets matching the header pattern must
/// never be delivered on a sink.
#[derive(Debug, Clone, Default)]
pub struct FilterProperty {
    /// Required source address.
    pub src_ip: Option<u32>,
    /// Required destination address.
    pub dst_ip: Option<u32>,
    /// Minimum packet length making the fields meaningful (default 38).
    pub min_len: u64,
}

impl FilterProperty {
    /// "Any packet with source IP `a` is dropped."
    pub fn src(a: u32) -> Self {
        FilterProperty {
            src_ip: Some(a),
            dst_ip: None,
            min_len: 38,
        }
    }

    /// "Any packet with destination IP `a` is dropped."
    pub fn dst(a: u32) -> Self {
        FilterProperty {
            src_ip: None,
            dst_ip: Some(a),
            min_len: 38,
        }
    }

    /// "Any packet with source IP `s` and destination IP `d` is
    /// dropped" — the paper's §4 conjunction example.
    pub fn src_dst(s: u32, d: u32) -> Self {
        FilterProperty {
            src_ip: Some(s),
            dst_ip: Some(d),
            min_len: 38,
        }
    }

    /// Sets the minimum packet length making the matched fields
    /// meaningful (builder style; the default is 38).
    #[must_use]
    pub fn min_len(mut self, min_len: u64) -> Self {
        self.min_len = min_len;
        self
    }
}

/// Conjoins the property's header pattern onto the initial state.
pub(crate) fn constrain_filter(
    pool: &mut TermPool,
    sums: &PipelineSummaries,
    prop: &FilterProperty,
    init: &mut ComposedState,
) {
    let min = pool.mk_const(16, prop.min_len.max(38));
    let c_len = pool.mk_ule(min, sums.input.pkt_len);
    init.constraint.push(c_len);
    if let Some(src) = prop.src_ip {
        for (i, b) in src.to_be_bytes().iter().enumerate() {
            let byte = sums.input.pkt_bytes[26 + i];
            let c = pool.mk_const(8, *b as u64);
            let eq = pool.mk_eq(byte, c);
            init.constraint.push(eq);
        }
    }
    if let Some(dst) = prop.dst_ip {
        for (i, b) in dst.to_be_bytes().iter().enumerate() {
            let byte = sums.input.pkt_bytes[30 + i];
            let c = pool.mk_const(8, *b as u64);
            let eq = pool.mk_eq(byte, c);
            init.constraint.push(eq);
        }
    }
}

/// Filtering suspect count after step 1: segments that deliver the
/// packet on a sink (each is a potential policy bypass until step 2
/// discharges it in context).
pub(crate) fn filter_suspects(pipeline: &Pipeline, sums: &PipelineSummaries) -> usize {
    sums.stages
        .iter()
        .enumerate()
        .map(|(k, s)| {
            let is_loop = s.loop_iters.is_some();
            s.segments
                .iter()
                .filter(|g| match g.outcome {
                    SegOutcome::Emit(p) if !(is_loop && p == PORT_CONTINUE) => {
                        matches!(pipeline.stages[k].resolve(p), Route::Sink(_))
                    }
                    _ => false,
                })
                .count()
        })
        .sum()
}

/// Proves or disproves a **filtering** property under the pipeline's
/// *specific configuration* (static maps summarized from their
/// configured contents).
#[deprecated(
    since = "0.2.0",
    note = "use `Verifier::new(p).check(Property::Filter(prop))` — a session \
            reuses step-1 summaries across properties (see the README \
            migration table)"
)]
pub fn verify_filtering(
    pipeline: &Pipeline,
    prop: &FilterProperty,
    cfg: &VerifyConfig,
) -> VerifyReport {
    Verifier::new(pipeline)
        .config(cfg.clone())
        .check(Property::Filter(prop.clone()))
        .expect_verify()
}

/// One entry of the longest-path report (§5.3).
#[derive(Debug)]
pub struct LongestPath {
    /// Exact instruction count.
    pub instrs: u64,
    /// A packet exercising the path.
    pub packet: CounterExample,
}

/// Finds the `n` longest feasible pipeline paths and packets that
/// trigger them — the adversarial-workload construction of §5.3.
///
/// Implements the paper's step-2 search: segments are considered in
/// decreasing instruction count via a best-first search whose
/// heuristic (maximum remaining instructions per stage) is admissible,
/// so paths pop in true length order.
#[deprecated(
    since = "0.2.0",
    note = "use `Verifier::new(p).longest_paths(n)` — a session reuses \
            step-1 summaries across properties (see the README migration \
            table)"
)]
pub fn longest_paths(pipeline: &Pipeline, n: usize, cfg: &VerifyConfig) -> Vec<LongestPath> {
    Verifier::new(pipeline).config(cfg.clone()).longest_paths(n)
}

/// The longest-path best-first search over already-built summaries
/// (the engine behind [`Verifier::longest_paths`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn longest_paths_from(
    pool: &mut TermPool,
    pipeline: &Pipeline,
    sums: &PipelineSummaries,
    init: ComposedState,
    cfg: &VerifyConfig,
    pruner: &mut Pruner,
    n: usize,
) -> Vec<LongestPath> {
    // Optimistic per-stage remaining cost.
    let nst = sums.stages.len();
    let mut stage_max = vec![0u64; nst];
    for (k, s) in sums.stages.iter().enumerate() {
        let mx = s.segments.iter().map(|g| g.instrs).max().unwrap_or(0);
        stage_max[k] = match s.loop_iters {
            Some(t) => mx * t as u64,
            None => mx,
        };
    }
    let mut suffix = vec![0u64; nst + 1];
    for k in (0..nst).rev() {
        suffix[k] = suffix[k + 1] + stage_max[k];
    }

    struct QNode {
        f: u64,
        stage: usize,
        iter: u32,
        state: ComposedState,
        terminal: bool,
    }
    impl PartialEq for QNode {
        fn eq(&self, o: &Self) -> bool {
            self.f == o.f
        }
    }
    impl Eq for QNode {}
    impl PartialOrd for QNode {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl Ord for QNode {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            self.f.cmp(&o.f)
        }
    }

    let mut solver = QuerySolver::new(cfg);
    let mut prefilter = Prefilter::new(cfg.concrete_prefilter, &sums.input, &cfg.sym);
    let mut heap: BinaryHeap<QNode> = BinaryHeap::new();
    heap.push(QNode {
        f: suffix[0],
        stage: 0,
        iter: 0,
        state: init,
        terminal: false,
    });
    let mut out = Vec::new();
    let mut composed = 0usize;
    while let Some(node) = heap.pop() {
        if out.len() >= n || composed >= cfg.max_composed_paths {
            break;
        }
        if node.terminal {
            // Admissible heuristic ⇒ this is the next-longest path.
            if let Feas::Sat(m) = check(
                pool,
                &mut solver,
                pruner,
                &mut prefilter,
                &node.state,
                false,
            ) {
                let m = solver.confirm_model(pool, cfg, &node.state, &sums.input, m);
                out.push(LongestPath {
                    instrs: node.state.instrs,
                    packet: CounterExample::from_model(
                        pool,
                        &sums.input,
                        &m,
                        format!("{}-instruction path", node.state.instrs),
                        node.state.trace.clone(),
                    ),
                });
            }
            continue;
        }
        let summary = &sums.stages[node.stage];
        let is_loop = summary.loop_iters.is_some();
        let max_iters = summary.loop_iters.unwrap_or(0);
        for (i, seg) in summary.segments.iter().enumerate() {
            if composed >= cfg.max_composed_paths {
                break;
            }
            let next = compose(pool, &node.state, &summary.input, seg, node.stage, i);
            composed += 1;
            let feasible = !matches!(
                check(pool, &mut solver, pruner, &mut prefilter, &next, true),
                Feas::Unsat
            );
            if !feasible {
                continue;
            }
            match seg.outcome {
                SegOutcome::Drop | SegOutcome::Crash(_) | SegOutcome::FuelExhausted => {
                    let f = next.instrs;
                    heap.push(QNode {
                        f,
                        stage: node.stage,
                        iter: 0,
                        state: next,
                        terminal: true,
                    });
                }
                SegOutcome::Emit(p) if is_loop && p == PORT_CONTINUE => {
                    if node.iter + 1 < max_iters {
                        let rem = (max_iters - node.iter - 1) as u64 * stage_max[node.stage]
                            / max_iters.max(1) as u64;
                        let f = next.instrs + rem + suffix[node.stage + 1];
                        heap.push(QNode {
                            f,
                            stage: node.stage,
                            iter: node.iter + 1,
                            state: next,
                            terminal: false,
                        });
                    }
                }
                SegOutcome::Emit(p) => {
                    let route = pipeline.stages[node.stage].resolve(p);
                    match route {
                        Route::Next | Route::To(_) => {
                            let target = match route {
                                Route::Next => node.stage + 1,
                                Route::To(s) => s,
                                _ => unreachable!(),
                            };
                            if target < nst {
                                let f = next.instrs + suffix[target];
                                heap.push(QNode {
                                    f,
                                    stage: target,
                                    iter: 0,
                                    state: next,
                                    terminal: false,
                                });
                            } else {
                                let f = next.instrs;
                                heap.push(QNode {
                                    f,
                                    stage: node.stage,
                                    iter: 0,
                                    state: next,
                                    terminal: true,
                                });
                            }
                        }
                        Route::Sink(_) | Route::Drop => {
                            let f = next.instrs;
                            heap.push(QNode {
                                f,
                                stage: node.stage,
                                iter: 0,
                                state: next,
                                terminal: true,
                            });
                        }
                    }
                }
            }
        }
    }
    out
}
