//! Incremental-session vs fresh-solver equivalence across the whole
//! stack: identical verdicts, traces, counterexample bytes and path
//! counts on real pipelines — sequentially and with worker threads —
//! plus the solver reuse counters surfaced on [`verifier::VerifyReport`].
//! The same discipline covers conflict-driven pruning
//! ([`verifier::VerifyConfig::core_pruning`]): pruning only ever skips
//! queries the solver would answer UNSAT, so on these budget-free
//! workloads (no query comes near `solver_conflict_budget`) verdict,
//! counterexample bytes *and composed-path counts* must match the
//! unpruned run exactly (compositions still count; only the solver
//! call is skipped).

use dataplane::Pipeline;
use elements::ip_fragmenter::{ip_fragmenter, FragmenterVariant};
use elements::pipelines::{to_pipeline, ROUTER_IP};
use symexec::SymConfig;
use verifier::{FilterProperty, Property, Verdict, Verifier, VerifyConfig, VerifyReport};

fn cfg(incremental: bool) -> VerifyConfig {
    VerifyConfig {
        sym: SymConfig {
            max_pkt_bytes: 48,
            ..Default::default()
        },
        incremental,
        ..Default::default()
    }
}

fn cfg_pruning(core_pruning: bool) -> VerifyConfig {
    VerifyConfig {
        core_pruning,
        ..cfg(true)
    }
}

fn router() -> Pipeline {
    to_pipeline(
        "router",
        vec![
            elements::classifier::classifier(),
            elements::check_ip_header::check_ip_header(false),
            elements::dec_ttl::dec_ttl(),
            elements::ip_options::ip_options(2, Some(ROUTER_IP)),
        ],
    )
}

fn click_bug1() -> Pipeline {
    to_pipeline(
        "edge+frag1",
        vec![
            elements::classifier::classifier(),
            elements::check_ip_header::check_ip_header(false),
            elements::ip_options::ip_options(1, Some(ROUTER_IP)),
            ip_fragmenter(FragmenterVariant::ClickBug1, 40),
        ],
    )
}

fn audit_props() -> Vec<Property> {
    vec![
        Property::CrashFreedom,
        Property::Bounded { imax: 5_000 },
        Property::Filter(FilterProperty::src(0x0BAD_0001)),
    ]
}

/// Byte-for-byte agreement: verdict class, description, trace,
/// counterexample packet, and the step-2 query count.
fn assert_identical(a: &VerifyReport, b: &VerifyReport, what: &str) {
    match (&a.verdict, &b.verdict) {
        (Verdict::Proved, Verdict::Proved) => {}
        (Verdict::Disproved(x), Verdict::Disproved(y)) => {
            assert_eq!(x.trace, y.trace, "{what}: trace differs");
            assert_eq!(x.description, y.description, "{what}: description differs");
            assert_eq!(x.bytes, y.bytes, "{what}: counterexample bytes differ");
        }
        (Verdict::Unknown(x), Verdict::Unknown(y)) => {
            assert_eq!(x, y, "{what}: unknown reason differs")
        }
        (x, y) => panic!("{what}: {x:?} vs {y:?}"),
    }
    assert_eq!(
        a.composed_paths, b.composed_paths,
        "{what}: both modes must walk the same composed paths"
    );
    assert_eq!(
        a.solver.queries, b.solver.queries,
        "{what}: same query stream"
    );
    assert_eq!(
        a.solver.by_blast, b.solver.by_blast,
        "{what}: the cheap layers must answer the same queries in both modes"
    );
}

#[test]
fn incremental_matches_fresh_on_proved_pipeline() {
    let p = router();
    let fresh = Verifier::new(&p)
        .config(cfg(false))
        .check_all(&audit_props());
    let inc = Verifier::new(&p)
        .config(cfg(true))
        .check_all(&audit_props());
    for ((prop, f), i) in audit_props().iter().zip(&fresh).zip(&inc) {
        assert_identical(
            f.as_verify().unwrap(),
            i.as_verify().unwrap(),
            &format!("router {prop:?}"),
        );
    }
}

#[test]
fn incremental_matches_fresh_on_disproved_pipeline() {
    let p = click_bug1();
    let props = [Property::CrashFreedom, Property::Bounded { imax: 5_000 }];
    let fresh = Verifier::new(&p).config(cfg(false)).check_all(&props);
    let inc = Verifier::new(&p).config(cfg(true)).check_all(&props);
    for ((prop, f), i) in props.iter().zip(&fresh).zip(&inc) {
        assert_identical(
            f.as_verify().unwrap(),
            i.as_verify().unwrap(),
            &format!("click-bug {prop:?}"),
        );
    }
    assert!(
        inc[1].as_verify().unwrap().verdict.is_disproved(),
        "bug #1 must still be found through the session: {}",
        inc[1]
    );
}

#[test]
fn parallel_sessions_agree_with_sequential_and_fresh() {
    let p = click_bug1();
    let props = [Property::CrashFreedom, Property::Bounded { imax: 5_000 }];
    let seq = Verifier::new(&p).config(cfg(true)).check_all(&props);
    let par_inc = Verifier::new(&p)
        .config(cfg(true))
        .threads(4)
        .check_all(&props);
    let par_fresh = Verifier::new(&p)
        .config(cfg(false))
        .threads(4)
        .check_all(&props);
    for (((prop, s), pi), pf) in props.iter().zip(&seq).zip(&par_inc).zip(&par_fresh) {
        assert_identical(
            pi.as_verify().unwrap(),
            pf.as_verify().unwrap(),
            &format!("threads(4) incremental-vs-fresh {prop:?}"),
        );
        // Sequential vs parallel: verdict, trace and description (the
        // PR-1/PR-2 guarantee), bytes included since both re-extract
        // on the shared master pool.
        match (
            &s.as_verify().unwrap().verdict,
            &pi.as_verify().unwrap().verdict,
        ) {
            (Verdict::Proved, Verdict::Proved) => {}
            (Verdict::Disproved(a), Verdict::Disproved(b)) => {
                assert_eq!(a.trace, b.trace, "{prop:?}: trace");
                assert_eq!(a.description, b.description, "{prop:?}: description");
                assert_eq!(a.bytes, b.bytes, "{prop:?}: bytes");
            }
            (Verdict::Unknown(a), Verdict::Unknown(b)) => {
                assert_eq!(a, b, "{prop:?}: unknown reason")
            }
            (a, b) => panic!("{prop:?}: {a:?} vs {b:?}"),
        }
    }
}

/// Pruned-vs-unpruned agreement: verdict class, trace, description,
/// counterexample bytes, and the composed-path count (pruning skips
/// solver calls, never compositions). Query counts are *expected* to
/// differ — that is the point of pruning — so they are not compared.
fn assert_prune_equivalent(pruned: &VerifyReport, plain: &VerifyReport, what: &str) {
    match (&pruned.verdict, &plain.verdict) {
        (Verdict::Proved, Verdict::Proved) => {}
        (Verdict::Disproved(x), Verdict::Disproved(y)) => {
            assert_eq!(x.trace, y.trace, "{what}: trace differs");
            assert_eq!(x.description, y.description, "{what}: description differs");
            assert_eq!(x.bytes, y.bytes, "{what}: counterexample bytes differ");
        }
        (Verdict::Unknown(x), Verdict::Unknown(y)) => {
            assert_eq!(x, y, "{what}: unknown reason differs")
        }
        (x, y) => panic!("{what}: {x:?} vs {y:?}"),
    }
    assert_eq!(
        pruned.composed_paths, plain.composed_paths,
        "{what}: pruning must not change which paths are composed"
    );
    assert_eq!(
        plain.cores.core_hits, 0,
        "{what}: the baseline must report zero pruning activity"
    );
    assert_eq!(
        plain.cores.cores_learned, 0,
        "{what}: baseline learns nothing"
    );
}

#[test]
fn pruning_matches_unpruned_on_proved_pipeline() {
    let p = router();
    let plain = Verifier::new(&p)
        .config(cfg_pruning(false))
        .check_all(&audit_props());
    let pruned = Verifier::new(&p)
        .config(cfg_pruning(true))
        .check_all(&audit_props());
    let mut learned_total = 0;
    for ((prop, pl), pr) in audit_props().iter().zip(&plain).zip(&pruned) {
        assert_prune_equivalent(
            pr.as_verify().unwrap(),
            pl.as_verify().unwrap(),
            &format!("router {prop:?}"),
        );
        learned_total += pr.as_verify().unwrap().cores.cores_learned;
    }
    assert!(
        learned_total > 0,
        "a refutation-heavy proof must learn cores"
    );
}

#[test]
fn pruning_matches_unpruned_on_disproved_pipeline() {
    let p = click_bug1();
    let props = [Property::CrashFreedom, Property::Bounded { imax: 5_000 }];
    let plain = Verifier::new(&p)
        .config(cfg_pruning(false))
        .check_all(&props);
    let pruned = Verifier::new(&p)
        .config(cfg_pruning(true))
        .check_all(&props);
    for ((prop, pl), pr) in props.iter().zip(&plain).zip(&pruned) {
        assert_prune_equivalent(
            pr.as_verify().unwrap(),
            pl.as_verify().unwrap(),
            &format!("click-bug {prop:?}"),
        );
    }
    assert!(
        pruned[1].as_verify().unwrap().verdict.is_disproved(),
        "bug #1 must still be found with pruning on: {}",
        pruned[1]
    );
}

#[test]
fn parallel_pruning_matches_unpruned_and_sequential() {
    let p = click_bug1();
    let props = [Property::CrashFreedom, Property::Bounded { imax: 5_000 }];
    let seq = Verifier::new(&p)
        .config(cfg_pruning(true))
        .check_all(&props);
    let par_pruned = Verifier::new(&p)
        .config(cfg_pruning(true))
        .threads(4)
        .check_all(&props);
    let par_plain = Verifier::new(&p)
        .config(cfg_pruning(false))
        .threads(4)
        .check_all(&props);
    for (((prop, s), pp), pl) in props.iter().zip(&seq).zip(&par_pruned).zip(&par_plain) {
        assert_prune_equivalent(
            pp.as_verify().unwrap(),
            pl.as_verify().unwrap(),
            &format!("threads(4) pruned-vs-plain {prop:?}"),
        );
        // And against the sequential pruned run: the PR-1/PR-2/PR-3
        // guarantee (verdict, trace, description, bytes) must survive
        // pruning too.
        match (
            &s.as_verify().unwrap().verdict,
            &pp.as_verify().unwrap().verdict,
        ) {
            (Verdict::Proved, Verdict::Proved) => {}
            (Verdict::Disproved(a), Verdict::Disproved(b)) => {
                assert_eq!(a.trace, b.trace, "{prop:?}: trace");
                assert_eq!(a.description, b.description, "{prop:?}: description");
                assert_eq!(a.bytes, b.bytes, "{prop:?}: bytes");
            }
            (Verdict::Unknown(a), Verdict::Unknown(b)) => {
                assert_eq!(a, b, "{prop:?}: unknown reason")
            }
            (a, b) => panic!("{prop:?}: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn cross_property_core_reuse_is_visible() {
    // Two Abstract-mode properties in one session: compositions along
    // the same prefixes re-intern to identical hash-consed terms, so
    // cores learned refuting crash-freedom paths must register as
    // core_hits in the bounded-execution search before it learns
    // anything itself.
    let p = router();
    let mut v = Verifier::new(&p).config(cfg_pruning(true));
    let r1 = v.check(Property::CrashFreedom).expect_verify();
    let r2 = v.check(Property::Bounded { imax: 10_000 }).expect_verify();
    assert!(r1.verdict.is_proved(), "{r1}");
    assert!(r2.verdict.is_proved(), "{r2}");
    assert!(
        r1.cores.cores_learned > 0,
        "first property must learn cores: {:?}",
        r1.cores
    );
    assert!(
        r2.cores.core_hits > 0,
        "second property must reuse the first property's cores: {:?}",
        r2.cores
    );
    // The JSON line surfaces the pruning counters.
    let j = r2.to_json();
    assert!(j.contains("\"cores\":{\"cores_learned\":"), "{j}");
    assert!(j.contains("\"core_hits\":"), "{j}");
    assert!(j.contains("\"subtrees_pruned\":"), "{j}");
    assert!(j.contains("\"decisions\":"), "{j}");
    assert!(j.contains("\"propagations\":"), "{j}");
}

#[test]
fn reuse_counters_are_visible_and_mode_faithful() {
    // Incremental mode: prefix reuse and clause carry-over must show
    // up both on the struct and in the JSON line.
    let p = click_bug1();
    let r = Verifier::new(&p)
        .config(cfg(true))
        .check(Property::Bounded { imax: 5_000 })
        .expect_verify();
    assert!(r.solver.queries > 0, "{:?}", r.solver);
    assert!(r.solver.by_blast > 0, "search must reach the blaster");
    assert!(
        r.solver.blast_cache_hits > 0,
        "shared prefixes must hit the blast cache: {:?}",
        r.solver
    );
    assert!(
        r.solver.learnt_reused > 0,
        "later queries must reuse learnt clauses: {:?}",
        r.solver
    );
    let j = r.to_json();
    assert!(j.contains("\"solver\":{\"queries\":"), "{j}");
    assert!(j.contains("\"blast_cache_hits\":"), "{j}");
    assert!(j.contains("\"learnt_reused\":"), "{j}");

    // Fresh mode: the same pipeline reports zero reuse, by definition.
    let f = Verifier::new(&p)
        .config(cfg(false))
        .check(Property::Bounded { imax: 5_000 })
        .expect_verify();
    assert_eq!(f.solver.blast_cache_hits, 0, "{:?}", f.solver);
    assert_eq!(f.solver.learnt_reused, 0, "{:?}", f.solver);
    assert!(f.solver.by_blast > 0);
}

#[test]
fn session_solver_persists_across_checks_in_one_mode() {
    // Two Abstract-mode properties on one Verifier share one session:
    // the second check's queries still see the first check's blasted
    // base constraints, so its miss counter stays below its query
    // count from the very first blast-layer query.
    let p = router();
    let mut v = Verifier::new(&p).config(cfg(true));
    let r1 = v.check(Property::CrashFreedom).expect_verify();
    let r2 = v.check(Property::Bounded { imax: 10_000 }).expect_verify();
    assert!(r1.verdict.is_proved(), "{r1}");
    assert!(r2.verdict.is_proved(), "{r2}");
    if r2.solver.by_blast > 0 {
        assert!(
            r2.solver.blast_cache_hits > 0,
            "cross-property prefix reuse: {:?}",
            r2.solver
        );
    }
}
