//! Session-API tests: summary caching, multi-property audits, the
//! sequential/parallel engine dispatch, custom properties, and the
//! deprecated-wrapper migration guarantees.

use dataplane::{Element, Pipeline, Route, Stage};
use dpir::ProgramBuilder;
use elements::ip_fragmenter::{ip_fragmenter, FragmenterVariant};
use elements::pipelines::{to_pipeline, ROUTER_IP};
use symexec::{SegOutcome, Segment, SymConfig, SymInput};
use verifier::{
    ComposedState, CustomProperty, FilterProperty, MapMode, Property, Report, Verdict, Verifier,
    VerifyConfig, VerifyReport,
};

fn cfg() -> VerifyConfig {
    VerifyConfig {
        sym: SymConfig {
            max_pkt_bytes: 48,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// The Table-2 router front used by the audit tests: preproc, TTL and
/// an IP-options loop.
fn router() -> Pipeline {
    to_pipeline(
        "router",
        vec![
            elements::classifier::classifier(),
            elements::check_ip_header::check_ip_header(false),
            elements::dec_ttl::dec_ttl(),
            elements::ip_options::ip_options(2, Some(ROUTER_IP)),
        ],
    )
}

/// Click fragmenter bug #1 behind the router preproc: a real
/// bounded-execution disproof.
fn click_bug1() -> Pipeline {
    to_pipeline(
        "edge+frag1",
        vec![
            elements::classifier::classifier(),
            elements::check_ip_header::check_ip_header(false),
            elements::ip_options::ip_options(1, Some(ROUTER_IP)),
            ip_fragmenter(FragmenterVariant::ClickBug1, 40),
        ],
    )
}

/// The fixed fragmenter behind the same preproc: provably bounded.
fn fixed_frag() -> Pipeline {
    to_pipeline(
        "edge+fixedfrag",
        vec![
            elements::classifier::classifier(),
            elements::check_ip_header::check_ip_header(false),
            ip_fragmenter(FragmenterVariant::Fixed, 40),
        ],
    )
}

const IMAX: u64 = 5_000;

/// Same proof status, violating trace and description. Counterexample
/// *bytes* are solver-model dependent across term pools and are
/// compared only where the engines share a master pool.
fn assert_same_outcome(a: &VerifyReport, b: &VerifyReport, what: &str) {
    match (&a.verdict, &b.verdict) {
        (Verdict::Proved, Verdict::Proved) => {}
        (Verdict::Disproved(x), Verdict::Disproved(y)) => {
            assert_eq!(x.trace, y.trace, "{what}: trace differs");
            assert_eq!(x.description, y.description, "{what}: description differs");
        }
        (Verdict::Unknown(x), Verdict::Unknown(y)) => {
            assert_eq!(x, y, "{what}: unknown reason differs");
        }
        (x, y) => panic!("{what}: {x:?} vs {y:?}"),
    }
    assert_eq!(a.step1_states, b.step1_states, "{what}: step-1 states");
    assert_eq!(a.step1_segments, b.step1_segments, "{what}: segments");
    assert_eq!(a.suspects, b.suspects, "{what}: suspects");
}

// --------------------------------------------------------------------
// (a) check_all == fresh per-property runs
// --------------------------------------------------------------------

#[test]
fn check_all_matches_fresh_runs_on_click_bug() {
    let p = click_bug1();
    let batch = Verifier::new(&p)
        .config(cfg())
        .check_all(&[Property::CrashFreedom, Property::Bounded { imax: IMAX }]);
    assert_eq!(batch.len(), 2);
    for (prop, got) in [Property::CrashFreedom, Property::Bounded { imax: IMAX }]
        .into_iter()
        .zip(&batch)
    {
        let fresh = Verifier::new(&p).config(cfg()).check(prop.clone());
        assert_same_outcome(
            fresh.as_verify().expect("verify report"),
            got.as_verify().expect("verify report"),
            &format!("{prop:?}"),
        );
    }
    // The bug is really found through the cache.
    assert!(
        batch[1].as_verify().unwrap().verdict.is_disproved(),
        "bug #1 must be disproved: {}",
        batch[1]
    );
}

#[test]
fn check_all_matches_fresh_runs_on_fixed_pipeline() {
    let p = fixed_frag();
    let batch = Verifier::new(&p)
        .config(cfg())
        .check_all(&[Property::CrashFreedom, Property::Bounded { imax: IMAX }]);
    for r in &batch {
        assert!(
            r.as_verify().unwrap().verdict.is_proved(),
            "fixed fragmenter proves everything: {r}"
        );
    }
    let fresh = Verifier::new(&p)
        .config(cfg())
        .check(Property::Bounded { imax: IMAX });
    assert_same_outcome(
        fresh.as_verify().unwrap(),
        batch[1].as_verify().unwrap(),
        "fixed/bounded",
    );
}

// --------------------------------------------------------------------
// (b) step 1 runs at most once per MapMode per session
// --------------------------------------------------------------------

#[test]
fn step1_cached_once_per_map_mode() {
    let p = router();
    let mut v = Verifier::new(&p).config(cfg());
    assert_eq!(v.step1_runs(), 0, "lazy: nothing built yet");

    v.check(Property::CrashFreedom);
    assert_eq!(v.step1_runs(), 1, "Abstract built");
    v.check(Property::Bounded { imax: 10_000 });
    assert_eq!(v.step1_runs(), 1, "Abstract reused for bounded");
    v.check(Property::StateConsistency);
    assert_eq!(v.step1_runs(), 1, "Abstract reused for §3.4");
    v.check(Property::Filter(FilterProperty::src(0x0BAD_0001)));
    assert_eq!(v.step1_runs(), 2, "Tables built for filtering");
    v.check(Property::Filter(FilterProperty::dst(0x0A09_0909)));
    assert_eq!(v.step1_runs(), 2, "Tables reused");
    v.check(Property::CrashFreedom);
    assert_eq!(v.step1_runs(), 2, "Abstract still cached");
    v.longest_paths(1);
    assert_eq!(v.step1_runs(), 2, "longest paths reuse the cache too");
}

/// The acceptance scenario: a three-property audit on the Table-2
/// router summarizes at most twice (once per map mode), and every
/// verdict equals its fresh single-property run.
#[test]
fn router_audit_summarizes_at_most_twice() {
    let p = router();
    let props = [
        Property::CrashFreedom,
        Property::Bounded { imax: 10_000 },
        Property::Filter(FilterProperty::src(0x0BAD_0001)),
    ];
    let mut v = Verifier::new(&p).config(cfg());
    let batch = v.check_all(&props);
    assert_eq!(v.step1_runs(), 2, "one step-1 pass per MapMode");
    for (prop, got) in props.iter().zip(&batch) {
        let fresh = Verifier::new(&p).config(cfg()).check(prop.clone());
        assert_same_outcome(
            fresh.as_verify().expect("verify report"),
            got.as_verify().expect("verify report"),
            &format!("{prop:?}"),
        );
    }
}

// --------------------------------------------------------------------
// (c) sequential vs parallel sessions agree
// --------------------------------------------------------------------

#[test]
fn sequential_and_parallel_sessions_agree() {
    let p = click_bug1();
    let props = [Property::CrashFreedom, Property::Bounded { imax: IMAX }];
    let seq = Verifier::new(&p).config(cfg()).check_all(&props);
    let par = Verifier::new(&p).config(cfg()).threads(4).check_all(&props);
    for ((prop, s), r) in props.iter().zip(&seq).zip(&par) {
        assert_same_outcome(
            s.as_verify().unwrap(),
            r.as_verify().unwrap(),
            &format!("{prop:?} (threads=4)"),
        );
    }

    // Single-property fresh sessions share the master-pool numbering
    // guarantee of the parallel driver: identical packets too.
    let s = Verifier::new(&p)
        .config(cfg())
        .check(Property::Bounded { imax: IMAX })
        .expect_verify();
    let r = Verifier::new(&p)
        .config(cfg())
        .threads(4)
        .check(Property::Bounded { imax: IMAX })
        .expect_verify();
    match (&s.verdict, &r.verdict) {
        (Verdict::Disproved(a), Verdict::Disproved(b)) => {
            assert_eq!(a.bytes, b.bytes, "counterexample packet differs");
            assert_eq!(a.trace, b.trace);
            assert_eq!(a.description, b.description);
        }
        (a, b) => panic!("expected disproofs, got {a:?} vs {b:?}"),
    }
}

// --------------------------------------------------------------------
// Custom properties
// --------------------------------------------------------------------

/// Crash-freedom reimplemented as a custom property: must agree with
/// the built-in everywhere the built-in's reachability pruning is not
/// load-bearing.
struct NoCrash;

impl CustomProperty for NoCrash {
    fn name(&self) -> String {
        "custom-no-crash".into()
    }

    fn violation(
        &self,
        pipeline: &Pipeline,
        stage: usize,
        seg: &Segment,
        _state: &ComposedState,
    ) -> Option<String> {
        seg.outcome
            .is_crash()
            .then(|| format!("{} crashes", pipeline.stages[stage].element.name))
    }
}

fn toy_broken() -> Pipeline {
    let mut b = ProgramBuilder::new("E2");
    let v = b.pkt_load(8, 0u64);
    let ok = b.ule(8, 10u64, v);
    b.assert_(ok, "in >= 10");
    b.emit(0);
    Pipeline::new("toy-broken").push_stage(
        Stage::passthrough(Element::straight("E2", b.build().expect("valid")))
            .route(0, Route::Sink(0)),
    )
}

#[test]
fn custom_property_runs_on_the_shared_engine() {
    let broken = toy_broken();
    let mut v = Verifier::new(&broken).config(cfg());
    let custom = v
        .check(Property::Custom(std::sync::Arc::new(NoCrash)))
        .expect_verify();
    assert_eq!(custom.property, "custom-no-crash");
    let builtin = v.check(Property::CrashFreedom).expect_verify();
    assert!(custom.verdict.is_disproved(), "{custom}");
    assert!(builtin.verdict.is_disproved(), "{builtin}");
    match (&custom.verdict, &builtin.verdict) {
        (Verdict::Disproved(a), Verdict::Disproved(b)) => {
            assert_eq!(a.trace, b.trace, "same violating path");
        }
        _ => unreachable!(),
    }
    assert_eq!(v.step1_runs(), 1, "custom shares the Abstract cache");

    // And on the crash-free router both prove.
    let p = router();
    let mut v = Verifier::new(&p).config(cfg());
    let custom = v
        .check(Property::Custom(std::sync::Arc::new(NoCrash)))
        .expect_verify();
    assert!(custom.verdict.is_proved(), "{custom}");
}

/// A genuinely new invariant: no delivered packet may have consumed
/// more than a budget of instructions *and* custom properties can veto
/// sink delivery — here, "nothing is ever delivered" on a pipeline
/// that always delivers.
struct NoDelivery;

impl CustomProperty for NoDelivery {
    fn name(&self) -> String {
        "no-delivery".into()
    }

    fn violation(
        &self,
        _pipeline: &Pipeline,
        _stage: usize,
        _seg: &Segment,
        _state: &ComposedState,
    ) -> Option<String> {
        None
    }

    fn sink_violates(&self) -> bool {
        true
    }

    fn constrain_initial(
        &self,
        pool: &mut bvsolve::TermPool,
        input: &SymInput,
        init: &mut ComposedState,
    ) {
        // Only consider packets of at least 38 bytes.
        let min = pool.mk_const(16, 38);
        let c = pool.mk_ule(min, input.pkt_len);
        init.constraint.push(c);
    }
}

#[test]
fn custom_sink_property_finds_delivery() {
    let p = router();
    let r = Verifier::new(&p)
        .config(cfg())
        .check(Property::Custom(std::sync::Arc::new(NoDelivery)))
        .expect_verify();
    let Verdict::Disproved(cex) = &r.verdict else {
        panic!("the router delivers packets: {r}");
    };
    assert!(cex.bytes.len() >= 38, "initial constraint respected");
}

// --------------------------------------------------------------------
// FilterProperty builders & filtering suspects
// --------------------------------------------------------------------

#[test]
fn filter_property_builders() {
    let d = FilterProperty::dst(0x0A09_0909);
    assert_eq!(d.dst_ip, Some(0x0A09_0909));
    assert_eq!(d.src_ip, None);
    assert_eq!(d.min_len, 38);

    let sd = FilterProperty::src_dst(0x0BAD_0001, 0x0A09_0909).min_len(64);
    assert_eq!(sd.src_ip, Some(0x0BAD_0001));
    assert_eq!(sd.dst_ip, Some(0x0A09_0909));
    assert_eq!(sd.min_len, 64);
}

#[test]
fn src_dst_builder_behaves_like_the_struct_literal() {
    // §4's conjunction example: blacklisted source ⇒ dropped for any
    // destination.
    let p = to_pipeline(
        "fw",
        vec![elements::ip_filter::ip_filter(vec![0x0BAD_0001])],
    );
    let r = Verifier::new(&p)
        .config(cfg())
        .check(Property::Filter(FilterProperty::src_dst(
            0x0BAD_0001,
            0x0A09_0909,
        )))
        .expect_verify();
    assert!(r.verdict.is_proved(), "{r}");
}

#[test]
fn filtering_reports_real_suspect_counts() {
    // Regression: filtering reports used to hardcode `suspects: 0`.
    // The firewall's pass-through segments deliver on a sink, so each
    // is a suspect until step 2 discharges it.
    let p = to_pipeline(
        "fw",
        vec![elements::ip_filter::ip_filter(vec![0x0BAD_0001])],
    );
    let r = Verifier::new(&p)
        .config(cfg())
        .check(Property::Filter(FilterProperty::src(0x0BAD_0001)))
        .expect_verify();
    assert!(
        r.suspects >= 1,
        "sink-delivery segments must be counted as filtering suspects: {r}"
    );
}

// --------------------------------------------------------------------
// Deprecated wrappers and JSON output
// --------------------------------------------------------------------

#[test]
#[allow(deprecated)]
fn deprecated_wrappers_match_session_exactly() {
    let p = toy_broken();
    let wrapper = verifier::verify_crash_freedom(&p, &cfg());
    let session = Verifier::new(&p)
        .config(cfg())
        .check(Property::CrashFreedom)
        .expect_verify();
    match (&wrapper.verdict, &session.verdict) {
        (Verdict::Disproved(a), Verdict::Disproved(b)) => {
            assert_eq!(a.bytes, b.bytes);
            assert_eq!(a.trace, b.trace);
            assert_eq!(a.description, b.description);
        }
        (a, b) => panic!("expected identical disproofs, got {a:?} vs {b:?}"),
    }
    assert_eq!(wrapper.step1_states, session.step1_states);
    assert_eq!(wrapper.composed_paths, session.composed_paths);
}

#[test]
fn reports_serialize_to_json() {
    let p = toy_broken();
    let mut v = Verifier::new(&p).config(cfg());

    let verify = v.check(Property::CrashFreedom);
    let j = verify.to_json();
    assert!(j.contains("\"kind\":\"verify\""), "{j}");
    assert!(j.contains("\"verdict\":\"disproved\""), "{j}");
    assert!(j.contains("\"counterexample\":{\"hex\":"), "{j}");
    assert!(j.contains("\"trace\":[[0,"), "{j}");
    // Descriptions quote the assert message: escaping must hold.
    assert!(!j.contains("\"in >= 10\""), "unescaped quote survived: {j}");

    let state = v.check(Property::StateConsistency);
    let j = state.to_json();
    assert!(j.contains("\"kind\":\"state\""), "{j}");

    let generic = v.check(Property::Generic { loop_cap: 4 });
    let j = generic.to_json();
    assert!(j.contains("\"kind\":\"generic\""), "{j}");
    assert!(j.contains("\"outcome\":\"completed\""), "{j}");
    match &generic {
        Report::Generic(g) => assert!(g.report.crashes >= 1, "baseline sees the crash too"),
        other => panic!("expected a generic report, got {other:?}"),
    }
}

// --------------------------------------------------------------------
// Lazy summaries API
// --------------------------------------------------------------------

#[test]
fn summaries_accessor_builds_and_caches() {
    let p = router();
    let mut v = Verifier::new(&p).config(cfg());
    let n1 = v
        .summaries(MapMode::Abstract)
        .expect("step 1 ok")
        .stages
        .len();
    assert_eq!(n1, 4);
    assert_eq!(v.step1_runs(), 1);
    // Segment outcomes are visible to callers (e.g. custom tooling).
    let has_emit = v
        .summaries(MapMode::Abstract)
        .expect("cached")
        .stages
        .iter()
        .any(|s| {
            s.segments
                .iter()
                .any(|g| matches!(g.outcome, SegOutcome::Emit(_)))
        });
    assert!(has_emit);
    assert_eq!(v.step1_runs(), 1, "second access is a cache hit");
}

// --------------------------------------------------------------------
// Static simplification: counters, JSON, lint surface
// --------------------------------------------------------------------

/// A pipeline with statically decidable structure: a constant-false
/// branch guarding a dead crash (unreachable-block lint + block
/// removal) and a constant chain (folds), so every static counter is
/// exercised.
fn staticky() -> Pipeline {
    let mut b = ProgramBuilder::new("S1");
    let c1 = b.add(32, 3u64, 4u64);
    let cond = b.ult(32, c1, 2u64); // 7 < 2: constant false
    let (dead, live) = b.fork(cond);
    b.switch_to(dead);
    b.crash("unreachable by construction");
    b.switch_to(live);
    b.emit(0);
    Pipeline::new("staticky").push_stage(
        Stage::passthrough(Element::straight("S1", b.build().expect("valid")))
            .route(0, Route::Sink(0)),
    )
}

#[test]
fn static_stats_populated_and_serialized() {
    let p = staticky();
    let mut scfg = cfg();
    scfg.static_simplify = true;
    let r = Verifier::new(&p)
        .config(scfg)
        .check(Property::CrashFreedom)
        .expect_verify();
    assert!(r.verdict.is_proved(), "{r}");
    // The constant-false fork: one unreachable-block lint (plus the
    // always-taken branch lint), one removed block, and the interval
    // pass seeds the trivially-safe sites.
    assert!(r.static_stats.lints_emitted >= 2, "{:?}", r.static_stats);
    assert!(r.static_stats.blocks_removed >= 1, "{:?}", r.static_stats);
    let j = r.to_json();
    let expected = format!(
        "\"static\":{{\"lints_emitted\":{},\"blocks_removed\":{},\"intervals_seeded\":{}}}",
        r.static_stats.lints_emitted,
        r.static_stats.blocks_removed,
        r.static_stats.intervals_seeded
    );
    assert!(j.contains(&expected), "{j}");
}

#[test]
fn static_stats_zero_when_disabled() {
    let p = staticky();
    let r = Verifier::new(&p)
        .config(cfg())
        .check(Property::CrashFreedom)
        .expect_verify();
    assert_eq!(r.static_stats, Default::default(), "{:?}", r.static_stats);
    assert!(
        r.to_json().contains(
            "\"static\":{\"lints_emitted\":0,\"blocks_removed\":0,\"intervals_seeded\":0}"
        ),
        "{}",
        r.to_json()
    );
}

#[test]
fn verifier_lint_reports_raw_programs() {
    let p = staticky();
    // Lints come from the *raw* programs whether or not simplification
    // is enabled — enabling it must not launder the diagnostics away.
    for simplify in [false, true] {
        let mut scfg = cfg();
        scfg.static_simplify = simplify;
        let v = Verifier::new(&p).config(scfg);
        let lints = v.lint();
        assert_eq!(lints.len(), 1);
        assert_eq!(lints[0].0, "S1");
        assert!(
            lints[0].1.iter().any(|d| d.code == "DPV001"),
            "expected the unreachable-block lint, got {:?}",
            lints[0].1
        );
    }
}

#[test]
fn simplified_summaries_fingerprint_apart() {
    use verifier::SummaryStore;
    // One shared store, two verifiers differing only in
    // static_simplify: the simplified program's fingerprint (facts
    // participate in `Program`'s derived `Hash`) must key separate
    // store entries — runs never see each other's summaries.
    let p = router();
    let store = SummaryStore::shared();
    let mut v_raw = Verifier::new(&p).config(cfg()).with_store(store.clone());
    let r_raw = v_raw.check(Property::CrashFreedom).expect_verify();
    let after_raw = r_raw.summary.store_size;
    assert!(after_raw > 0, "raw run must populate the store");

    let mut scfg = cfg();
    scfg.static_simplify = true;
    // Ground truth: which stage programs the simplifier actually
    // rewrites (or annotates with facts). Those must re-key; stages it
    // leaves byte-identical must share the raw entry — that sharing is
    // the content-addressing working as designed.
    let env = dpir::analysis::IvEnv {
        len_lo: scfg.sym.min_pkt_len,
        len_hi: scfg.sym.max_pkt_bytes as u64,
    };
    let changed = p
        .stages
        .iter()
        .filter(|s| {
            let prog = s.element.program();
            dpir::analysis::simplify(prog, env).0 != *prog
        })
        .count();
    assert!(changed > 0, "the router must have simplifiable stages");

    let mut v_simp = Verifier::new(&p).config(scfg).with_store(store.clone());
    let r_simp = v_simp.check(Property::CrashFreedom).expect_verify();
    assert_eq!(
        r_simp.summary.hits,
        p.stages.len() - changed,
        "only byte-identical stages may hit raw-keyed summaries"
    );
    assert_eq!(
        r_simp.summary.store_size,
        after_raw + changed,
        "every rewritten stage must occupy a new key"
    );
    assert_eq!(r_raw.verdict.label(), r_simp.verdict.label());
}

// --------------------------------------------------------------------
// Portfolio & concrete-prefilter counters: off by default, populated
// and verdict-preserving when enabled
// --------------------------------------------------------------------

#[test]
fn portfolio_prefilter_counters_zero_when_off() {
    let p = click_bug1();
    let r = Verifier::new(&p)
        .config(cfg())
        .check(Property::CrashFreedom)
        .expect_verify();
    assert_eq!(r.solver.portfolio_races, 0, "{:?}", r.solver);
    assert_eq!(r.solver.clauses_imported, 0, "{:?}", r.solver);
    assert_eq!(r.solver.clauses_exported, 0, "{:?}", r.solver);
    assert!(r.solver.races_won_by.iter().all(|&n| n == 0));
    assert_eq!(r.prefilter.checks, 0, "{:?}", r.prefilter);
    assert_eq!(r.prefilter.hits, 0, "{:?}", r.prefilter);
    let j = r.to_json();
    assert!(j.contains("\"portfolio_races\":0"), "{j}");
    assert!(j.contains("\"races_won_by\":[0,0,0,0,0,0,0,0]"), "{j}");
    assert!(j.contains("\"clauses_imported\":0"), "{j}");
    assert!(j.contains("\"clauses_exported\":0"), "{j}");
    assert!(j.contains("\"prefilter\":{\"checks\":0,\"hits\":0}"), "{j}");
}

#[test]
fn prefilter_counters_populate_and_preserve_outcomes() {
    for p in [click_bug1(), fixed_frag()] {
        let base = Verifier::new(&p)
            .config(cfg())
            .check(Property::CrashFreedom)
            .expect_verify();
        let mut pcfg = cfg();
        pcfg.concrete_prefilter = true;
        let pre = Verifier::new(&p)
            .config(pcfg)
            .check(Property::CrashFreedom)
            .expect_verify();
        assert_same_outcome(&base, &pre, &format!("prefilter/{}", p.name));
        // Counterexample *bytes* must match too: the corpus may decide
        // feasibility but never leaks its packets into reports.
        if let (Verdict::Disproved(a), Verdict::Disproved(b)) = (&base.verdict, &pre.verdict) {
            assert_eq!(a.bytes, b.bytes, "{}: cex bytes differ", p.name);
        }
        assert_eq!(base.composed_paths, pre.composed_paths, "{}", p.name);
        assert!(pre.prefilter.checks > 0, "{:?}", pre.prefilter);
        assert!(
            pre.prefilter.hits <= pre.prefilter.checks,
            "{:?}",
            pre.prefilter
        );
        let j = pre.to_json();
        let expected = format!(
            "\"prefilter\":{{\"checks\":{},\"hits\":{}}}",
            pre.prefilter.checks, pre.prefilter.hits
        );
        assert!(j.contains(&expected), "{j}");
    }
}

#[test]
fn portfolio_config_preserves_outcomes_and_counts_races() {
    let p = click_bug1();
    let base = Verifier::new(&p)
        .config(cfg())
        .check(Property::Bounded { imax: IMAX })
        .expect_verify();
    let mut rcfg = cfg();
    rcfg.portfolio = Some(4);
    // Escalation 1: any query costing more than one conflict races, so
    // the counters actually move on this small pipeline.
    rcfg.portfolio_escalation = 1;
    let raced = Verifier::new(&p)
        .config(rcfg)
        .check(Property::Bounded { imax: IMAX })
        .expect_verify();
    assert_same_outcome(&base, &raced, "portfolio/bounded");
    if let (Verdict::Disproved(a), Verdict::Disproved(b)) = (&base.verdict, &raced.verdict) {
        assert_eq!(a.bytes, b.bytes, "portfolio cex bytes differ");
    }
    assert_eq!(base.composed_paths, raced.composed_paths);
    // Racing auto-disables on single-core hosts (no parallelism to
    // exploit); the equality contract above still holds there, but the
    // race counters only move when a second core exists.
    if std::thread::available_parallelism().map_or(1, |n| n.get()) > 1 {
        assert!(raced.solver.portfolio_races > 0, "{:?}", raced.solver);
    }
    assert_eq!(
        raced.solver.races_won_by.iter().sum::<u64>(),
        raced.solver.portfolio_races,
        "{:?}",
        raced.solver
    );
}
