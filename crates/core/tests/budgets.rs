//! Verifier budget and degradation behavior: when resources run out the
//! verdict must degrade to Unknown — never to a false Proved/Disproved.

// These suites exercise the deprecated pre-session free functions on
// purpose: each one doubles as a migration test that the thin wrappers
// keep returning verdicts identical to the session API they delegate to.
#![allow(deprecated)]

use elements::pipelines::{to_pipeline, ROUTER_IP};
use symexec::SymConfig;
use verifier::{
    verify_bounded_execution, verify_crash_freedom, verify_filtering, FilterProperty, Verdict,
    VerifyConfig,
};

fn base_cfg() -> VerifyConfig {
    VerifyConfig {
        sym: SymConfig {
            max_pkt_bytes: 48,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn router() -> dataplane::Pipeline {
    to_pipeline(
        "router",
        vec![
            elements::classifier::classifier(),
            elements::check_ip_header::check_ip_header(false),
            elements::dec_ttl::dec_ttl(),
            elements::ip_options::ip_options(2, Some(ROUTER_IP)),
        ],
    )
}

#[test]
fn step1_state_budget_degrades_to_unknown() {
    let mut cfg = base_cfg();
    cfg.sym.max_states = 5;
    let r = verify_crash_freedom(&router(), &cfg);
    assert!(
        matches!(r.verdict, Verdict::Unknown(_)),
        "tiny step-1 budget must yield Unknown: {r}"
    );
}

#[test]
fn step2_path_budget_degrades_to_unknown() {
    let mut cfg = base_cfg();
    cfg.max_composed_paths = 3;
    let r = verify_crash_freedom(&router(), &cfg);
    assert!(
        matches!(r.verdict, Verdict::Unknown(_)),
        "tiny step-2 budget must yield Unknown: {r}"
    );
    assert!(r.composed_paths <= 3);
}

#[test]
fn ample_budget_proves_same_pipeline() {
    let r = verify_crash_freedom(&router(), &base_cfg());
    assert!(r.verdict.is_proved(), "{r}");
}

#[test]
fn bounded_budget_degrades_to_unknown() {
    let mut cfg = base_cfg();
    cfg.max_composed_paths = 2;
    let r = verify_bounded_execution(&router(), 10_000, &cfg);
    assert!(matches!(r.verdict, Verdict::Unknown(_)), "{r}");
}

#[test]
fn filtering_dst_property() {
    // dst-based filtering: drop everything to 10.9.9.9 via a one-entry
    // blacklist keyed on... the src filter only matches src, so a dst
    // property over it must be *disproved* (packets to that dst with a
    // clean source pass).
    let p = to_pipeline("fw", vec![elements::ip_filter::ip_filter(vec![0x0BAD0001])]);
    let prop = FilterProperty {
        src_ip: None,
        dst_ip: Some(0x0A090909),
        min_len: 38,
    };
    let r = verify_filtering(&p, &prop, &base_cfg());
    assert!(r.verdict.is_disproved(), "{r}");
    if let Verdict::Disproved(cex) = &r.verdict {
        let pkt = dpir::PacketData::new(cex.bytes.clone());
        assert_eq!(dataplane::headers::ip_dst(&pkt), 0x0A090909);
        assert_ne!(dataplane::headers::ip_src(&pkt), 0x0BAD0001);
    }
}

#[test]
fn filtering_src_and_dst_conjunction() {
    // The paper's §4 example: "any packet with source IP A and
    // destination IP B will be dropped". Satisfied when A is
    // blacklisted regardless of B.
    let p = to_pipeline("fw", vec![elements::ip_filter::ip_filter(vec![0x0BAD0001])]);
    let prop = FilterProperty {
        src_ip: Some(0x0BAD0001),
        dst_ip: Some(0x0A090909),
        min_len: 38,
    };
    let r = verify_filtering(&p, &prop, &base_cfg());
    assert!(r.verdict.is_proved(), "{r}");
}

#[test]
fn report_display_is_informative() {
    let r = verify_crash_freedom(&router(), &base_cfg());
    let s = r.to_string();
    assert!(s.contains("crash-freedom"));
    assert!(s.contains("PROVED"));
    assert!(s.contains("step1"));
    assert!(s.contains("step2"));
}
