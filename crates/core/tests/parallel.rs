//! Determinism under parallelism: the parallel driver must produce the
//! *same* verdict as the sequential driver — same proof status, and on
//! disproofs the same counterexample packet, trace and description —
//! for every thread count and split depth.

// These suites exercise the deprecated pre-session free functions on
// purpose: each one doubles as a migration test that the thin wrappers
// keep returning verdicts identical to the session API they delegate to.
#![allow(deprecated)]

use dataplane::{Element, Pipeline, Route, Stage};
use dpir::ProgramBuilder;
use elements::ip_fragmenter::{ip_fragmenter, FragmenterVariant};
use elements::pipelines::{network_gateway, to_pipeline, ROUTER_IP};
use symexec::SymConfig;
use verifier::{
    summarize_pipeline, summarize_pipeline_par, verify_bounded_execution,
    verify_bounded_execution_par, verify_crash_freedom, verify_crash_freedom_par, verify_filtering,
    verify_filtering_par, FilterProperty, MapMode, ParallelConfig, Verdict, VerifyConfig,
    VerifyReport,
};

fn cfg() -> VerifyConfig {
    VerifyConfig {
        sym: SymConfig {
            max_pkt_bytes: 48,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// The Fig. 1 toy pipeline of `tests/toy_pipeline.rs`: clamp then
/// assert — a discharged suspect, proof expected.
fn toy_pipeline() -> Pipeline {
    let mut b = ProgramBuilder::new("E1");
    let len = b.pkt_len();
    let empty = b.ult(16, len, 1u64);
    let (e, ok) = b.fork(empty);
    let _ = e;
    b.drop_();
    b.switch_to(ok);
    let v = b.pkt_load(8, 0u64);
    let small = b.ult(8, v, 10u64);
    let (clamp, pass) = b.fork(small);
    let _ = clamp;
    b.pkt_store(8, 0u64, 10u64);
    b.emit(0);
    b.switch_to(pass);
    b.emit(0);
    let clamp_elem = Element::straight("E1", b.build().expect("valid"));

    let mut b = ProgramBuilder::new("E2");
    let v = b.pkt_load(8, 0u64);
    let ok = b.ule(8, 10u64, v);
    b.assert_(ok, "in >= 10");
    b.emit(0);
    let assert_elem = Element::straight("E2", b.build().expect("valid"));

    Pipeline::new("fig1")
        .push_stage(Stage::passthrough(clamp_elem))
        .push_stage(Stage::passthrough(assert_elem).route(0, Route::Sink(0)))
}

/// The assert element alone: crash-freedom is disproved.
fn broken_pipeline() -> Pipeline {
    let mut b = ProgramBuilder::new("E2");
    let v = b.pkt_load(8, 0u64);
    let ok = b.ule(8, 10u64, v);
    b.assert_(ok, "in >= 10");
    b.emit(0);
    Pipeline::new("fig1-broken").push_stage(
        Stage::passthrough(Element::straight("E2", b.build().expect("valid")))
            .route(0, Route::Sink(0)),
    )
}

/// Asserts verdict equality, including counterexample equality.
fn assert_same_verdict(seq: &VerifyReport, par: &VerifyReport, what: &str) {
    match (&seq.verdict, &par.verdict) {
        (Verdict::Proved, Verdict::Proved) => {}
        (Verdict::Disproved(a), Verdict::Disproved(b)) => {
            assert_eq!(a.bytes, b.bytes, "{what}: counterexample packet differs");
            assert_eq!(a.trace, b.trace, "{what}: counterexample trace differs");
            assert_eq!(
                a.description, b.description,
                "{what}: counterexample description differs"
            );
        }
        (Verdict::Unknown(a), Verdict::Unknown(b)) => {
            assert_eq!(a, b, "{what}: unknown reason differs");
        }
        (a, b) => panic!("{what}: sequential {a:?} vs parallel {b:?}"),
    }
    assert_eq!(seq.step1_states, par.step1_states, "{what}: step-1 states");
    assert_eq!(
        seq.step1_segments, par.step1_segments,
        "{what}: step-1 segments"
    );
    assert_eq!(seq.suspects, par.suspects, "{what}: suspect count");
}

fn sweep(par_of: impl Fn(&ParallelConfig) -> VerifyReport, seq: &VerifyReport, what: &str) {
    for (threads, split_depth) in [(1, 0), (1, 2), (2, 1), (8, 3)] {
        let par = par_of(&ParallelConfig {
            threads,
            split_depth,
        });
        assert_same_verdict(
            seq,
            &par,
            &format!("{what} (threads={threads}, split={split_depth})"),
        );
    }
}

#[test]
fn toy_pipeline_crash_freedom_matches() {
    let seq = verify_crash_freedom(&toy_pipeline(), &cfg());
    assert!(matches!(seq.verdict, Verdict::Proved), "{seq}");
    sweep(
        |p| verify_crash_freedom_par(&toy_pipeline(), &cfg(), p),
        &seq,
        "toy/crash-freedom",
    );
}

#[test]
fn disproof_counterexamples_match_exactly() {
    let seq = verify_crash_freedom(&broken_pipeline(), &cfg());
    assert!(seq.verdict.is_disproved(), "{seq}");
    sweep(
        |p| verify_crash_freedom_par(&broken_pipeline(), &cfg(), p),
        &seq,
        "broken/crash-freedom",
    );
}

#[test]
fn bounded_execution_bug_hunt_matches() {
    // Fragmenter bug #1 behind a small router front: a real disproof
    // with a loop element in the composition.
    let build = || {
        to_pipeline(
            "frag-bug1",
            vec![
                elements::classifier::classifier(),
                elements::check_ip_header::check_ip_header(false),
                elements::ip_options::ip_options(1, Some(ROUTER_IP)),
                ip_fragmenter(FragmenterVariant::ClickBug1, 40),
            ],
        )
    };
    let seq = verify_bounded_execution(&build(), 5_000, &cfg());
    assert!(seq.verdict.is_disproved(), "{seq}");
    sweep(
        |p| verify_bounded_execution_par(&build(), 5_000, &cfg(), p),
        &seq,
        "frag-bug1/bounded",
    );

    // And the fixed variant proves.
    let fixed = || {
        to_pipeline(
            "frag-fixed",
            vec![
                elements::classifier::classifier(),
                elements::check_ip_header::check_ip_header(false),
                ip_fragmenter(FragmenterVariant::Fixed, 40),
            ],
        )
    };
    let seq = verify_bounded_execution(&fixed(), 5_000, &cfg());
    assert!(seq.verdict.is_proved(), "{seq}");
    // Proofs explore the full path space — sweep fewer configs.
    for (threads, split_depth) in [(2, 1), (8, 3)] {
        let par = verify_bounded_execution_par(
            &fixed(),
            5_000,
            &cfg(),
            &ParallelConfig {
                threads,
                split_depth,
            },
        );
        assert_same_verdict(&seq, &par, "frag-fixed/bounded");
    }
}

#[test]
fn gateway_filtering_matches() {
    // Filtering leaves most input bytes unconstrained, so the concrete
    // counterexample packet is solver-model dependent and may differ
    // between the sequential and parallel pools (see the determinism
    // notes in `verifier::parallel`). Guaranteed and asserted here:
    // the proof status matches, the packet is identical across all
    // *parallel* runs (thread counts ≥ 2, any split depth), and every
    // reported packet actually triggers the violation when replayed
    // concretely. `threads == 1` runs the sequential engine itself
    // under the unified session dispatch, so its packet belongs to the
    // sequential class and is only replay-checked.
    let build = || to_pipeline("gateway", network_gateway(3));
    let prop = FilterProperty::src(0x0A00_002A);
    let seq = verify_filtering(&build(), &prop, &cfg());

    let mut parallel_packets = Vec::new();
    for (threads, split_depth) in [(1, 1), (2, 2), (4, 1), (8, 3)] {
        let par = verify_filtering_par(
            &build(),
            &prop,
            &cfg(),
            &ParallelConfig {
                threads,
                split_depth,
            },
        );
        assert_eq!(
            std::mem::discriminant(&seq.verdict),
            std::mem::discriminant(&par.verdict),
            "threads={threads} split={split_depth}: {seq} vs {par}"
        );
        if let Verdict::Disproved(cex) = &par.verdict {
            replay_filtering_violation(&prop, &cex.bytes);
            if threads > 1 {
                parallel_packets.push(cex.bytes.clone());
            } else if let Verdict::Disproved(seq_cex) = &seq.verdict {
                // threads == 1 *is* the sequential engine: its packet
                // must be byte-identical to the sequential wrapper's.
                assert_eq!(
                    seq_cex.bytes, cex.bytes,
                    "threads=1 must reproduce the sequential packet"
                );
            }
        }
    }
    if let Verdict::Disproved(cex) = &seq.verdict {
        replay_filtering_violation(&prop, &cex.bytes);
    }
    parallel_packets.dedup();
    assert!(
        parallel_packets.len() <= 1,
        "parallel counterexample must not depend on thread count or split depth"
    );
}

/// Replays a filtering counterexample concretely: the packet must
/// match the property pattern and still be delivered.
fn replay_filtering_violation(prop: &FilterProperty, bytes: &[u8]) {
    let src = u32::from_be_bytes([bytes[26], bytes[27], bytes[28], bytes[29]]);
    assert_eq!(Some(src), prop.src_ip, "packet must match the property");
    let p = to_pipeline("replay", network_gateway(3));
    let stores = elements::pipelines::build_all_stores(&p);
    let mut r = dataplane::Runner::new(p, stores);
    let mut pkt = dpir::PacketData::new(bytes.to_vec());
    let out = r.run_packet(&mut pkt);
    assert!(
        matches!(out, dataplane::PipelineOutcome::Delivered(_)),
        "counterexample must actually be delivered, got {out:?}"
    );
}

#[test]
fn parallel_step1_reproduces_sequential_numbering() {
    let p = to_pipeline("gateway", network_gateway(3));
    let mut pool_seq = bvsolve::TermPool::new();
    let seq = summarize_pipeline(&mut pool_seq, &p, &cfg().sym, MapMode::Abstract).expect("ok");
    for threads in [1, 4] {
        let mut pool_par = bvsolve::TermPool::new();
        let par = summarize_pipeline_par(&mut pool_par, &p, &cfg().sym, MapMode::Abstract, threads)
            .expect("ok");
        // Identical variable numbering: names and widths agree 1:1, so
        // models and counterexamples are interchangeable.
        assert_eq!(pool_seq.num_vars(), pool_par.num_vars());
        for v in 0..pool_seq.num_vars() as u32 {
            assert_eq!(pool_seq.var_name(v), pool_par.var_name(v), "var {v} name");
            assert_eq!(
                pool_seq.var_width(v),
                pool_par.var_width(v),
                "var {v} width"
            );
        }
        assert_eq!(seq.total_states, par.total_states);
        assert_eq!(seq.stages.len(), par.stages.len());
        for (a, b) in seq.stages.iter().zip(par.stages.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.segments.len(), b.segments.len());
            assert_eq!(a.loop_iters, b.loop_iters);
            assert_eq!(a.input.pkt_byte_vars, b.input.pkt_byte_vars);
            assert_eq!(a.input.len_var, b.input.len_var);
            for (sa, sb) in a.segments.iter().zip(b.segments.iter()) {
                assert_eq!(sa.outcome, sb.outcome);
                assert_eq!(sa.instrs, sb.instrs);
                assert_eq!(sa.constraint.len(), sb.constraint.len());
            }
        }
    }
}
