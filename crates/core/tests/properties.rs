//! End-to-end verification tests: the paper's headline results.
//!
//! Every disproof is **replayed concretely**: the counterexample packet
//! returned by the verifier is pushed through the real dataplane and
//! must trigger exactly the violation the verifier predicted. That
//! closes the loop between the symbolic and concrete semantics.

// These suites exercise the deprecated pre-session free functions on
// purpose: each one doubles as a migration test that the thin wrappers
// keep returning verdicts identical to the session API they delegate to.
#![allow(deprecated)]

use dataplane::{PipelineOutcome, Runner};
use elements::ip_fragmenter::{ip_fragmenter, FragmenterVariant};
use elements::pipelines::{
    build_all_stores, to_pipeline, NAT_PUBLIC_IP, NAT_PUBLIC_PORT, ROUTER_IP,
};
use symexec::SymConfig;
use verifier::{
    verify_bounded_execution, verify_crash_freedom, verify_filtering, FilterProperty, Verdict,
    VerifyConfig,
};

fn cfg() -> VerifyConfig {
    VerifyConfig {
        sym: SymConfig {
            max_pkt_bytes: 48,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn replay(elements: Vec<dataplane::Element>, bytes: &[u8]) -> PipelineOutcome {
    let p = to_pipeline("replay", elements);
    let stores = build_all_stores(&p);
    let mut r = Runner::new(p, stores);
    r.fuel_per_stage = 20_000;
    let mut pkt = dpir::PacketData::new(bytes.to_vec());
    r.run_packet(&mut pkt)
}

// --------------------------------------------------------------------
// Crash-freedom
// --------------------------------------------------------------------

#[test]
fn classifier_alone_is_crash_free() {
    let p = to_pipeline("clf", vec![elements::classifier::classifier()]);
    let r = verify_crash_freedom(&p, &cfg());
    assert!(r.verdict.is_proved(), "{r}");
    assert_eq!(r.suspects, 0);
}

#[test]
fn dec_ttl_alone_crashes_and_cex_replays() {
    // In isolation DecTTL reads byte 22 unconditionally: disproved.
    let elems = vec![elements::dec_ttl::dec_ttl()];
    let p = to_pipeline("ttl", elems.clone());
    let r = verify_crash_freedom(&p, &cfg());
    let Verdict::Disproved(cex) = &r.verdict else {
        panic!("expected disproof, got {r}");
    };
    assert!(cex.bytes.len() < 23, "short packet triggers the OOB read");
    match replay(elems, &cex.bytes) {
        PipelineOutcome::Crashed { .. } => {}
        other => panic!("counterexample must crash concretely, got {other:?}"),
    }
}

#[test]
fn preproc_discharges_dec_ttl_suspect() {
    // CheckIPHeader guarantees 34 bytes; DecTTL's crash suspect becomes
    // infeasible in context — the paper's Fig. 1 argument on real code.
    let elems = vec![
        elements::classifier::classifier(),
        elements::check_ip_header::check_ip_header(false),
        elements::dec_ttl::dec_ttl(),
    ];
    let p = to_pipeline("preproc+ttl", elems);
    let r = verify_crash_freedom(&p, &cfg());
    assert!(r.verdict.is_proved(), "{r}");
    assert!(r.suspects >= 1, "DecTTL is suspect in isolation");
    assert!(r.composed_paths >= 1, "step 2 had to discharge it");
}

#[test]
fn bug3_click_nat_gateway_crashes() {
    // Table 3, bug #3: network gateway with the Click NAT — a failed
    // assertion, found after composing a handful of paths.
    let elems = vec![
        elements::classifier::classifier(),
        elements::check_ip_header::check_ip_header(false),
        elements::nat::nat_click_buggy(NAT_PUBLIC_IP, NAT_PUBLIC_PORT, 64),
    ];
    let p = to_pipeline("gateway+clicknat", elems.clone());
    let r = verify_crash_freedom(&p, &cfg());
    let Verdict::Disproved(cex) = &r.verdict else {
        panic!("expected disproof, got {r}");
    };
    assert!(
        cex.description.contains("heap.hh"),
        "names the Click assert: {}",
        cex.description
    );
    // The counterexample is the hairpin packet: Ts = Td = T_public.
    let pkt = dpir::PacketData::new(cex.bytes.clone());
    assert_eq!(dataplane::headers::ip_src(&pkt), NAT_PUBLIC_IP);
    assert_eq!(dataplane::headers::ip_dst(&pkt), NAT_PUBLIC_IP);
    assert_eq!(dataplane::headers::l4_src_port(&pkt), NAT_PUBLIC_PORT);
    assert_eq!(dataplane::headers::l4_dst_port(&pkt), NAT_PUBLIC_PORT);
    match replay(elems, &cex.bytes) {
        PipelineOutcome::Crashed { stage: 2, .. } => {}
        other => panic!("hairpin must crash the NAT stage, got {other:?}"),
    }
}

#[test]
fn verified_nat_gateway_is_crash_free() {
    let elems = vec![
        elements::classifier::classifier(),
        elements::check_ip_header::check_ip_header(false),
        elements::nat::nat_verified(NAT_PUBLIC_IP, 64),
    ];
    let p = to_pipeline("gateway", elems);
    let r = verify_crash_freedom(&p, &cfg());
    assert!(r.verdict.is_proved(), "{r}");
}

// --------------------------------------------------------------------
// Bounded-execution (bugs #1 and #2)
// --------------------------------------------------------------------

const IMAX: u64 = 5_000;

#[test]
fn bug1_fragmenter_unbounded_with_options() {
    // Table 3, bug #1: edge-router preproc + IPoptions(1) + buggy
    // fragmenter. Any real option on a fragmented packet hangs.
    let elems = vec![
        elements::classifier::classifier(),
        elements::check_ip_header::check_ip_header(false),
        elements::ip_options::ip_options(1, Some(ROUTER_IP)),
        ip_fragmenter(FragmenterVariant::ClickBug1, 40),
    ];
    let p = to_pipeline("edge+frag1", elems.clone());
    let r = verify_bounded_execution(&p, IMAX, &cfg());
    let Verdict::Disproved(cex) = &r.verdict else {
        panic!("expected disproof, got {r}");
    };
    match replay(elems, &cex.bytes) {
        PipelineOutcome::Stuck { stage: 3 } => {}
        other => panic!("cex must hang the fragmenter, got {other:?}"),
    }
}

#[test]
fn bug2_fragmenter_unbounded_without_options_element() {
    // Table 3, bug #2 (feasible case): no IPoptions element upstream —
    // a zero-length option freezes the walk. Found after few paths.
    let elems = vec![
        elements::classifier::classifier(),
        elements::check_ip_header::check_ip_header(false),
        ip_fragmenter(FragmenterVariant::ClickBug2, 40),
    ];
    let p = to_pipeline("edge+frag2", elems.clone());
    let r = verify_bounded_execution(&p, IMAX, &cfg());
    let Verdict::Disproved(cex) = &r.verdict else {
        panic!("expected disproof, got {r}");
    };
    match replay(elems, &cex.bytes) {
        PipelineOutcome::Stuck { stage: 2 } => {}
        other => panic!("cex must hang the fragmenter, got {other:?}"),
    }
}

#[test]
fn bug2_masked_by_options_element() {
    // Table 3, bug #2 (infeasible case): the IPoptions element drops
    // zero-length options, so the fragmenter's stuck path composes to
    // UNSAT on every pipeline path — the expensive refutation.
    let elems = vec![
        elements::classifier::classifier(),
        elements::check_ip_header::check_ip_header(false),
        elements::ip_options::ip_options(2, Some(ROUTER_IP)),
        ip_fragmenter(FragmenterVariant::ClickBug2, 40),
    ];
    let p = to_pipeline("edge+opts+frag2", elems);
    let r = verify_bounded_execution(&p, IMAX, &cfg());
    assert!(r.verdict.is_proved(), "options element masks bug #2: {r}");
    assert!(r.composed_paths > 10, "the refutation is the pricey case");
}

#[test]
fn fixed_fragmenter_is_bounded() {
    let elems = vec![
        elements::classifier::classifier(),
        elements::check_ip_header::check_ip_header(false),
        ip_fragmenter(FragmenterVariant::Fixed, 40),
    ];
    let p = to_pipeline("edge+fixedfrag", elems);
    let r = verify_bounded_execution(&p, IMAX, &cfg());
    assert!(r.verdict.is_proved(), "{r}");
}

// --------------------------------------------------------------------
// Filtering (the LSRR case study)
// --------------------------------------------------------------------

const BLACKLISTED: u32 = 0x0BAD_0001;

#[test]
fn lsrr_bypasses_firewall_and_cex_replays() {
    // §5.3 "unintended behavior": IPoptions (LSRR enabled) before the
    // firewall — the property "any packet with blacklisted source is
    // dropped" is violated by an LSRR packet.
    let elems = vec![
        elements::ip_options::ip_options(2, Some(ROUTER_IP)),
        elements::ip_filter::ip_filter(vec![BLACKLISTED]),
    ];
    let p = to_pipeline("lsrr+fw", elems.clone());
    let r = verify_filtering(&p, &FilterProperty::src(BLACKLISTED), &cfg());
    let Verdict::Disproved(cex) = &r.verdict else {
        panic!("expected violation, got {r}");
    };
    // The packet really has the blacklisted source...
    let pkt = dpir::PacketData::new(cex.bytes.clone());
    assert_eq!(dataplane::headers::ip_src(&pkt), BLACKLISTED);
    // ...and carries the LSRR option somewhere in the options region.
    let opts_end = dataplane::headers::l4_offset(&pkt).min(pkt.bytes.len());
    assert!(
        pkt.bytes[dataplane::headers::IP_OPTS..opts_end].contains(&dataplane::headers::IPOPT_LSRR),
        "counterexample carries LSRR: {}",
        cex.hex()
    );
    // Replayed concretely, it sails through the firewall.
    match replay(elems, &cex.bytes) {
        PipelineOutcome::Delivered(_) => {}
        other => panic!("cex must be delivered, got {other:?}"),
    }
}

#[test]
fn firewall_holds_without_lsrr_rewriting() {
    let elems = vec![
        elements::ip_options::ip_options(2, None),
        elements::ip_filter::ip_filter(vec![BLACKLISTED]),
    ];
    let p = to_pipeline("opts+fw", elems);
    let r = verify_filtering(&p, &FilterProperty::src(BLACKLISTED), &cfg());
    assert!(r.verdict.is_proved(), "{r}");
}

#[test]
fn firewall_alone_filters() {
    let elems = vec![elements::ip_filter::ip_filter(vec![BLACKLISTED])];
    let p = to_pipeline("fw", elems);
    let r = verify_filtering(&p, &FilterProperty::src(BLACKLISTED), &cfg());
    assert!(r.verdict.is_proved(), "{r}");
    // A different source must NOT be provably dropped.
    let p2 = to_pipeline(
        "fw2",
        vec![elements::ip_filter::ip_filter(vec![BLACKLISTED])],
    );
    let r2 = verify_filtering(&p2, &FilterProperty::src(0x0A00_0001), &cfg());
    assert!(r2.verdict.is_disproved(), "{r2}");
}
