//! Content-addressed summary store and fleet tests: key hashing,
//! deterministic (byte-identical) rebasing, store-on vs store-off
//! verdict/counterexample/path equivalence for both engines, and
//! fleet scheduling determinism.

use bvsolve::TermPool;
use dataplane::Pipeline;
use elements::ip_fragmenter::{ip_fragmenter, FragmenterVariant};
use elements::pipelines::{to_pipeline, ROUTER_IP};
use std::sync::Arc;
use symexec::SymConfig;
use verifier::fleet::Fleet;
use verifier::{
    summarize_pipeline, summarize_pipeline_with_store, MapMode, Property, SummaryKey, SummaryStore,
    Verifier, VerifyConfig, VerifyReport,
};

fn cfg() -> VerifyConfig {
    VerifyConfig {
        sym: SymConfig {
            max_pkt_bytes: 48,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Router front: preproc, TTL, options loop (crash disproof, bounded
/// proof — both engines exercise suspects and refutations).
fn router() -> Pipeline {
    to_pipeline(
        "router",
        vec![
            elements::classifier::classifier(),
            elements::check_ip_header::check_ip_header(false),
            elements::dec_ttl::dec_ttl(),
            elements::ip_options::ip_options(2, Some(ROUTER_IP)),
        ],
    )
}

/// Click fragmenter bug #1 — a real bounded-execution disproof with a
/// counterexample packet.
fn click_bug1() -> Pipeline {
    to_pipeline(
        "edge+frag1",
        vec![
            elements::classifier::classifier(),
            elements::check_ip_header::check_ip_header(false),
            elements::ip_options::ip_options(1, Some(ROUTER_IP)),
            ip_fragmenter(FragmenterVariant::ClickBug1, 40),
        ],
    )
}

/// A router variant whose only difference is the ip_lookup table
/// contents (the fleet's config-variant shape).
fn lookup_variant(routes: Vec<(u32, u32, u32)>) -> Pipeline {
    to_pipeline(
        "lookup",
        vec![
            elements::classifier::classifier(),
            elements::check_ip_header::check_ip_header(false),
            elements::ip_lookup::ip_lookup(2, routes),
        ],
    )
}

/// Renders the full step-1 result — var names/widths plus the Debug
/// form of every stage (which includes every TermId) — so two pools
/// can be compared for byte-identical construction.
fn render(pool: &TermPool, sums: &verifier::PipelineSummaries) -> String {
    let mut out = String::new();
    for v in 0..pool.num_vars() as u32 {
        out.push_str(&format!("{}:{};", pool.var_name(v), pool.var_width(v)));
    }
    for s in &sums.stages {
        out.push_str(&format!("{s:?}\n"));
    }
    out
}

#[test]
fn warm_store_rebases_byte_identically() {
    let p = router();
    let store = SummaryStore::new();
    let c = cfg();

    let mut cold_pool = TermPool::new();
    let cold =
        summarize_pipeline_with_store(&mut cold_pool, &p, &c.sym, MapMode::Abstract, &store, 1)
            .expect("ok");
    assert_eq!(cold.summary_misses, p.stages.len());
    assert_eq!(cold.summary_hits, 0);

    let mut warm_pool = TermPool::new();
    let warm =
        summarize_pipeline_with_store(&mut warm_pool, &p, &c.sym, MapMode::Abstract, &store, 1)
            .expect("ok");
    assert_eq!(warm.summary_hits, p.stages.len(), "fully served from cache");
    assert_eq!(warm.summary_misses, 0);

    // And a store-less run for the "store off" reference point.
    let mut off_pool = TermPool::new();
    let off = summarize_pipeline(&mut off_pool, &p, &c.sym, MapMode::Abstract).expect("ok");

    let cold_r = render(&cold_pool, &cold);
    assert_eq!(
        cold_r,
        render(&warm_pool, &warm),
        "hit == miss, byte for byte"
    );
    assert_eq!(cold_r, render(&off_pool, &off), "store on == store off");
}

#[test]
fn warm_store_rebases_byte_identically_threaded() {
    let p = router();
    let store = SummaryStore::new();
    let c = cfg();
    let mut a_pool = TermPool::new();
    let a = summarize_pipeline_with_store(&mut a_pool, &p, &c.sym, MapMode::Tables, &store, 4)
        .expect("ok");
    let mut b_pool = TermPool::new();
    let b = summarize_pipeline_with_store(&mut b_pool, &p, &c.sym, MapMode::Tables, &store, 4)
        .expect("ok");
    assert_eq!(b.summary_hits, p.stages.len());
    assert_eq!(render(&a_pool, &a), render(&b_pool, &b));
    // threads(4) == threads(1): the rebase phase is sequential.
    let mut s_pool = TermPool::new();
    let s = summarize_pipeline_with_store(
        &mut s_pool,
        &p,
        &c.sym,
        MapMode::Tables,
        &SummaryStore::new(),
        1,
    )
    .expect("ok");
    assert_eq!(render(&a_pool, &a), render(&s_pool, &s));
}

#[test]
fn table_contents_change_the_key() {
    let a = lookup_variant(vec![(0x0A00_0000, 8, 0)]).stages[2]
        .element
        .clone();
    let b = lookup_variant(vec![(0x0B00_0000, 8, 1)]).stages[2]
        .element
        .clone();
    let c = cfg();
    assert_eq!(
        SummaryKey::of(&a, MapMode::Abstract, &c.sym),
        SummaryKey::of(&b, MapMode::Abstract, &c.sym),
        "abstract summaries are table-blind: variants share them"
    );
    assert_ne!(
        SummaryKey::of(&a, MapMode::Tables, &c.sym),
        SummaryKey::of(&b, MapMode::Tables, &c.sym),
        "tables-mode summaries are keyed by contents"
    );
    // Same contents ⇒ same key, both modes.
    let a2 = lookup_variant(vec![(0x0A00_0000, 8, 0)]).stages[2]
        .element
        .clone();
    assert_eq!(
        SummaryKey::of(&a, MapMode::Tables, &c.sym),
        SummaryKey::of(&a2, MapMode::Tables, &c.sym),
    );
}

/// Proof status, trace, description, *and bytes* — sessions share the
/// deterministic master-pool construction, so everything must match.
fn assert_identical_reports(a: &VerifyReport, b: &VerifyReport, what: &str) {
    match (&a.verdict, &b.verdict) {
        (verifier::Verdict::Disproved(x), verifier::Verdict::Disproved(y)) => {
            assert_eq!(x.bytes, y.bytes, "{what}: counterexample bytes");
            assert_eq!(x.trace, y.trace, "{what}: trace");
            assert_eq!(x.description, y.description, "{what}: description");
        }
        (verifier::Verdict::Proved, verifier::Verdict::Proved) => {}
        (verifier::Verdict::Unknown(x), verifier::Verdict::Unknown(y)) => {
            assert_eq!(x, y, "{what}: unknown reason");
        }
        (x, y) => panic!("{what}: verdicts diverge: {x:?} vs {y:?}"),
    }
    assert_eq!(a.step1_states, b.step1_states, "{what}: step-1 states");
    assert_eq!(a.composed_paths, b.composed_paths, "{what}: composed paths");
}

#[test]
fn store_on_off_identical_verdicts_seq_and_par() {
    let props = [Property::CrashFreedom, Property::Bounded { imax: 5_000 }];
    for threads in [1usize, 4] {
        for p in [router(), click_bug1()] {
            // Store off: a session's default private store, cold.
            let mut off = Verifier::new(&p).config(cfg()).threads(threads);
            let off_reports = off.check_all(&props);

            // Store on: a store pre-warmed by a full unrelated session.
            let store = SummaryStore::shared();
            let mut warmer = Verifier::new(&p)
                .config(cfg())
                .with_store(Arc::clone(&store));
            let _ = warmer.check_all(&props);
            assert!(store.misses() > 0, "warmer populated the store");

            let mut on = Verifier::new(&p)
                .config(cfg())
                .threads(threads)
                .with_store(Arc::clone(&store));
            let on_reports = on.check_all(&props);

            let hits_before = store.hits();
            assert!(hits_before > 0, "warm session hit the store");

            for (a, b) in off_reports.iter().zip(&on_reports) {
                assert_identical_reports(
                    a.as_verify().expect("verify"),
                    b.as_verify().expect("verify"),
                    &format!("{} threads={threads}", p.name),
                );
            }
            // The building check reports its cache traffic.
            let first = on_reports[0].as_verify().expect("verify");
            assert_eq!(first.summary.hits, p.stages.len(), "all stages rebased");
            assert_eq!(first.summary.misses, 0);
            assert!(first.summary.store_size > 0);
            // The cache-warm check (same mode) reports zero, like
            // step1_time.
            let second = on_reports[1].as_verify().expect("verify");
            assert_eq!(second.summary.hits + second.summary.misses, 0);
        }
    }
}

#[test]
fn report_json_carries_summary_counters() {
    let p = router();
    let store = SummaryStore::shared();
    let mut v = Verifier::new(&p)
        .config(cfg())
        .with_store(Arc::clone(&store));
    let r = v.check(Property::CrashFreedom);
    let json = r.to_json();
    assert!(
        json.contains(
            "\"summary\":{\"hits\":0,\"misses\":4,\"store_size\":4,\
             \"store_loads\":0,\"store_writes\":0,\"load_bytes\":0,\"evictions\":0}"
        ),
        "cold session executes every stage: {json}"
    );
    let mut v2 = Verifier::new(&p)
        .config(cfg())
        .with_store(Arc::clone(&store));
    let r2 = v2.check(Property::CrashFreedom);
    assert!(
        r2.to_json().contains(
            "\"summary\":{\"hits\":4,\"misses\":0,\"store_size\":4,\
             \"store_loads\":0,\"store_writes\":0,\"load_bytes\":0,\"evictions\":0}"
        ),
        "warm session is all hits: {}",
        r2.to_json()
    );
}

#[test]
fn fleet_matches_individual_sessions_and_is_schedule_independent() {
    let fibs: Vec<Vec<(u32, u32, u32)>> = (0..4)
        .map(|i| vec![(0x0A00_0000 + (i << 16), 16, i), (0x0B00_0000, 8, 9)])
        .collect();
    let props = [Property::CrashFreedom, Property::Bounded { imax: 5_000 }];

    let build_fleet = |threads: usize, share: bool| {
        let mut fleet = Fleet::new()
            .config(cfg())
            .threads(threads)
            .share_store(share);
        for (i, fib) in fibs.iter().enumerate() {
            fleet = fleet.variant(format!("fib-{i}"), lookup_variant(fib.clone()));
        }
        fleet.properties(&props).run()
    };

    let seq = build_fleet(1, true);
    let par = build_fleet(4, true);
    let isolated = build_fleet(4, false);

    assert!(
        seq.summary_hits > 0,
        "variants share elements: the store must hit"
    );
    assert_eq!(
        isolated.summary_hits, 0,
        "share_store(false) never touches the fleet store"
    );

    // Reference: one private session per (variant, property).
    for (i, fib) in fibs.iter().enumerate() {
        let p = lookup_variant(fib.clone());
        let mut v = Verifier::new(&p).config(cfg());
        for (j, prop) in props.iter().enumerate() {
            let reference = v.check(prop.clone());
            for fleet_run in [&seq, &par, &isolated] {
                assert_identical_reports(
                    reference.as_verify().expect("verify"),
                    fleet_run.variants[i].reports[j]
                        .as_verify()
                        .expect("verify"),
                    &format!("variant {i} prop {j}"),
                );
            }
        }
    }

    // Aggregates agree across schedules.
    assert_eq!(seq.disproved(), par.disproved());
    assert_eq!(seq.all_proved(), par.all_proved());
    let json = seq.to_json();
    assert!(json.contains("\"kind\":\"fleet\""), "{json}");
    assert!(json.contains("\"summary_hits\""), "{json}");
    assert!(json.contains("fib-3"), "{json}");
}

#[test]
fn fleet_abstract_checks_share_across_table_variants() {
    // Variants differing ONLY in table contents: abstract-mode keys
    // ignore tables, so after variant 0 every abstract stage hits.
    let fibs: Vec<Vec<(u32, u32, u32)>> = (0..3).map(|i| vec![(0x0A00_0000, 8, i)]).collect();
    let mut fleet = Fleet::new().config(cfg()).threads(1);
    for (i, fib) in fibs.iter().enumerate() {
        fleet = fleet.variant(format!("v{i}"), lookup_variant(fib.clone()));
    }
    let report = fleet.properties(&[Property::CrashFreedom]).run();
    let stages = 3;
    assert_eq!(
        report.summary_misses as usize, stages,
        "step 1 executes once per distinct element, not per variant"
    );
    assert_eq!(
        report.summary_hits as usize,
        (fibs.len() - 1) * stages,
        "every later variant is all hits"
    );
}
