//! Persistent-store integration: disk-loaded summaries and cores must
//! be byte-indistinguishable from freshly built ones, corrupt store
//! files must degrade to cache misses (never wrong answers, never
//! panics), and [`ChurnSession::apply_batch`] must coalesce a burst of
//! deltas into one re-verification that matches applying them one by
//! one.
//!
//! The equality bar is the same as the incremental/churn differential
//! suites: verdict labels, counterexample bytes, descriptions, traces
//! and composed-path counts — cache temperature may only change who
//! executes, never what is concluded.

use dataplane::{Pipeline, TableDelta, TableOp};
use elements::pipelines::{edge_fib, to_pipeline};
use std::path::PathBuf;
use std::sync::Arc;
use symexec::SymConfig;
use verifier::{
    ChurnSession, FilterProperty, Property, ReuseLevel, SummaryKey, SummaryStore, Verdict,
    Verifier, VerifyConfig, VerifyReport,
};

fn cfg() -> VerifyConfig {
    VerifyConfig {
        sym: SymConfig {
            max_pkt_bytes: 48,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// A table-bearing router: exact-match firewall + LPM FIB, so the
/// property set below exercises both map modes.
fn router() -> Pipeline {
    to_pipeline(
        "persist-router",
        vec![
            elements::classifier::classifier(),
            elements::check_ip_header::check_ip_header(false),
            elements::ip_filter::ip_filter(vec![0x0BAD_0001, 0x0BAD_0010]),
            elements::ip_lookup::ip_lookup(4, edge_fib()),
        ],
    )
}

fn props() -> Vec<Property> {
    vec![
        Property::CrashFreedom,
        Property::Bounded { imax: 10_000 },
        Property::Filter(FilterProperty::src(0x0BAD_0001)),
    ]
}

/// A per-test scratch directory, removed on drop.
struct TmpDir(PathBuf);

impl TmpDir {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("dpv-persist-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TmpDir(dir)
    }
}

impl Drop for TmpDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn assert_identical(a: &VerifyReport, b: &VerifyReport, what: &str) {
    match (&a.verdict, &b.verdict) {
        (Verdict::Proved, Verdict::Proved) => {}
        (Verdict::Disproved(x), Verdict::Disproved(y)) => {
            assert_eq!(x.trace, y.trace, "{what}: trace differs");
            assert_eq!(x.description, y.description, "{what}: description differs");
            assert_eq!(x.bytes, y.bytes, "{what}: counterexample bytes differ");
        }
        (Verdict::Unknown(x), Verdict::Unknown(y)) => {
            assert_eq!(x, y, "{what}: unknown reason differs")
        }
        (x, y) => panic!("{what}: {x:?} vs {y:?}"),
    }
    assert_eq!(
        a.composed_paths, b.composed_paths,
        "{what}: composed-path count differs"
    );
}

fn check_all(p: &Pipeline, store: Option<Arc<SummaryStore>>, threads: usize) -> Vec<VerifyReport> {
    let mut v = Verifier::new(p).config(cfg()).threads(threads);
    if let Some(s) = store {
        v = v.with_store(s);
    }
    v.check_all(&props())
        .into_iter()
        .map(|r| r.expect_verify())
        .collect()
}

#[test]
fn disk_loaded_summaries_match_fresh_builds_byte_for_byte() {
    let tmp = TmpDir::new("roundtrip");
    let p = router();
    let baseline = check_all(&p, None, 1);

    // Cold disk: everything executes, everything is written back.
    let cold_store = Arc::new(SummaryStore::persistent(&tmp.0).expect("store dir"));
    let cold = check_all(&p, Some(Arc::clone(&cold_store)), 1);
    for (b, c) in baseline.iter().zip(&cold) {
        assert_identical(b, c, &format!("cold-disk {}", b.property));
    }
    assert!(cold_store.store_writes() > 0, "cold run must persist");
    assert_eq!(cold_store.store_loads(), 0, "nothing to load yet");

    // Warm disk, cold memory — a fresh store over the same directory
    // simulates a process restart. Step 1 must be all loads, zero
    // executions, and every report byte-identical.
    let warm_store = Arc::new(SummaryStore::persistent(&tmp.0).expect("store dir"));
    let warm = check_all(&p, Some(Arc::clone(&warm_store)), 1);
    for (b, w) in baseline.iter().zip(&warm) {
        assert_identical(b, w, &format!("warm-disk {}", b.property));
    }
    assert_eq!(warm_store.misses(), 0, "warm disk must not re-execute");
    assert!(warm_store.store_loads() > 0);
    assert!(warm_store.load_bytes() > 0);

    // The counters surface on the report (attributed to the building
    // check) and in its JSON line.
    let first = &warm[0];
    assert!(
        first.summary.store_loads > 0,
        "building check must report its disk loads: {:?}",
        first.summary
    );
    let j = first.to_json();
    assert!(j.contains("\"store_loads\":"), "{j}");
    assert!(j.contains("\"store_writes\":"), "{j}");
    assert!(j.contains("\"load_bytes\":"), "{j}");
    assert!(j.contains("\"evictions\":"), "{j}");

    // Same contract through the parallel engine.
    let par_store = Arc::new(SummaryStore::persistent(&tmp.0).expect("store dir"));
    let par = check_all(&p, Some(par_store), 4);
    for (b, w) in baseline.iter().zip(&par) {
        assert_identical(b, w, &format!("warm-disk threads(4) {}", b.property));
    }
}

#[test]
fn corrupt_store_files_degrade_to_misses_never_wrong_answers() {
    let tmp = TmpDir::new("corrupt");
    let p = to_pipeline(
        "corrupt-probe",
        vec![
            elements::classifier::classifier(),
            elements::dec_ttl::dec_ttl(),
        ],
    );
    let baseline = check_all(&p, None, 1);

    let populate = Arc::new(SummaryStore::persistent(&tmp.0).expect("store dir"));
    check_all(&p, Some(populate), 1);
    let files: Vec<PathBuf> = std::fs::read_dir(&tmp.0)
        .expect("dir")
        .map(|e| e.expect("entry").path())
        .collect();
    assert!(!files.is_empty(), "populate run must write store files");
    let images: Vec<Vec<u8>> = files
        .iter()
        .map(|f| std::fs::read(f).expect("readable"))
        .collect();

    // Each mutilation is applied to every file at once; the run over
    // the damaged directory must still agree with the fresh baseline
    // (bad files are misses that re-execute and are overwritten).
    type Mutilation = Box<dyn Fn(&[u8]) -> Vec<u8>>;
    let mutilate: [(&str, Mutilation); 4] = [
        ("truncated", Box::new(|b: &[u8]| b[..b.len() / 2].to_vec())),
        ("emptied", Box::new(|_| Vec::new())),
        (
            "bit-flipped",
            Box::new(|b: &[u8]| {
                let mut v = b.to_vec();
                let mid = v.len() / 2;
                v[mid] ^= 0x10;
                v
            }),
        ),
        (
            "version-bumped",
            Box::new(|b: &[u8]| {
                let mut v = b.to_vec();
                v[4] = v[4].wrapping_add(1); // format-version word
                v
            }),
        ),
    ];
    for (what, f) in &mutilate {
        for (path, image) in files.iter().zip(&images) {
            std::fs::write(path, f(image)).expect("write corrupt image");
        }
        let store = Arc::new(SummaryStore::persistent(&tmp.0).expect("store dir"));
        let got = check_all(&p, Some(Arc::clone(&store)), 1);
        for (b, g) in baseline.iter().zip(&got) {
            assert_identical(b, g, &format!("{what} {}", b.property));
        }
        assert!(
            store.misses() > 0,
            "{what}: damaged files must fall back to execution"
        );
    }

    // The corrupt runs re-wrote good files; the directory is warm
    // again.
    let healed = Arc::new(SummaryStore::persistent(&tmp.0).expect("store dir"));
    let got = check_all(&p, Some(Arc::clone(&healed)), 1);
    for (b, g) in baseline.iter().zip(&got) {
        assert_identical(b, g, &format!("healed {}", b.property));
    }
    assert_eq!(healed.misses(), 0, "write-back must heal the store");
}

fn fib_delta(op: TableOp) -> TableDelta {
    TableDelta::new("IPlookup", dpir::MapId(0), op)
}

fn filter_delta(op: TableOp) -> TableDelta {
    TableDelta::new("IPFilter", dpir::MapId(0), op)
}

fn burst() -> Vec<TableDelta> {
    vec![
        filter_delta(TableOp::ExactRemove(vec![0x0BAD_0001])),
        fib_delta(TableOp::LpmInsert(vec![(0x0C00_0000, 8, 2)])),
        filter_delta(TableOp::ExactInsert(vec![(0x0BAD_0099, 1)])),
        fib_delta(TableOp::LpmInsert(vec![(0x0C00_0000, 16, 3)])),
    ]
}

#[test]
fn apply_batch_matches_one_by_one_deltas() {
    let mk = |level| {
        ChurnSession::new(router(), props(), cfg(), level).expect("search-based properties")
    };
    for level in [ReuseLevel::Summaries, ReuseLevel::Sessions] {
        let mut serial = mk(level);
        serial.verify();
        let mut last = None;
        for d in &burst() {
            last = Some(serial.apply_delta(d).expect("valid delta"));
        }
        let serial_final = last.expect("non-empty burst");

        let mut batched = mk(level);
        batched.verify();
        let batch_report = batched.apply_batch(&burst()).expect("valid burst");

        assert_eq!(batch_report.update, 1, "one burst, one update");
        for (s, b) in serial_final.reports.iter().zip(&batch_report.reports) {
            assert_identical(s, b, &format!("{level:?} batch-vs-serial {}", s.property));
        }
        // The burst touches two stages; each re-summarizes at most
        // once however many deltas hit it.
        assert!(
            batch_report.stages_reexecuted + batch_report.stages_rebased <= 2,
            "burst must coalesce per stage: {} reexecuted + {} rebased",
            batch_report.stages_reexecuted,
            batch_report.stages_rebased
        );
    }
}

#[test]
fn apply_batch_cancelling_burst_is_a_no_op_update() {
    let mut session = ChurnSession::new(router(), props(), cfg(), ReuseLevel::Sessions)
        .expect("search-based properties");
    let initial = session.verify();
    // Insert-then-remove cancels: the net table state is unchanged, so
    // at Sessions level every property replays without searching.
    let report = session
        .apply_batch(&[
            filter_delta(TableOp::ExactInsert(vec![(0x0BAD_7777, 1)])),
            filter_delta(TableOp::ExactRemove(vec![0x0BAD_7777])),
        ])
        .expect("valid burst");
    assert!(
        report.replayed.iter().all(|&r| r),
        "cancelled burst must replay every property: {:?}",
        report.replayed
    );
    assert_eq!(report.stages_reexecuted, 0);
    assert_eq!(report.stages_rebased, 0);
    for (i, b) in initial.reports.iter().zip(&report.reports) {
        assert_identical(i, b, &format!("cancelled burst {}", i.property));
    }
}

#[test]
fn apply_batch_is_atomic_on_error() {
    let mut session = ChurnSession::new(router(), props(), cfg(), ReuseLevel::Sessions)
        .expect("search-based properties");
    session.verify();
    let keys_before: Vec<SummaryKey> = session
        .pipeline()
        .stages
        .iter()
        .map(|s| SummaryKey::of(&s.element, verifier::MapMode::Tables, &cfg().sym))
        .collect();
    let err = session.apply_batch(&[
        filter_delta(TableOp::ExactInsert(vec![(0x0BAD_4242, 1)])),
        TableDelta::new(
            "NoSuchElement",
            dpir::MapId(0),
            TableOp::ExactRemove(vec![1]),
        ),
    ]);
    assert!(err.is_err(), "batch with an invalid delta must fail");
    let keys_after: Vec<SummaryKey> = session
        .pipeline()
        .stages
        .iter()
        .map(|s| SummaryKey::of(&s.element, verifier::MapMode::Tables, &cfg().sym))
        .collect();
    assert_eq!(
        keys_before, keys_after,
        "a failed batch must leave every table untouched (first delta included)"
    );
}

#[test]
fn churn_session_restarts_warm_from_store_path() {
    let tmp = TmpDir::new("churn-restart");
    let pruning_cfg = VerifyConfig {
        core_pruning: true,
        ..cfg()
    };
    let stream = burst();

    // Reference trajectory without any persistence.
    let mut plain = ChurnSession::new(router(), props(), pruning_cfg.clone(), ReuseLevel::Sessions)
        .expect("search-based properties");
    let mut expect = vec![plain.verify()];
    for d in &stream {
        expect.push(plain.apply_delta(d).expect("valid delta"));
    }

    // First "process": populates summaries and cores on disk.
    let mut first = ChurnSession::new(router(), props(), pruning_cfg.clone(), ReuseLevel::Sessions)
        .expect("search-based properties")
        .with_store_path(&tmp.0)
        .expect("store dir");
    let mut got = vec![first.verify()];
    for d in &stream {
        got.push(first.apply_delta(d).expect("valid delta"));
    }
    for (e, g) in expect.iter().zip(&got) {
        for (er, gr) in e.reports.iter().zip(&g.reports) {
            assert_identical(er, gr, &format!("first process {}", er.property));
        }
    }
    assert!(
        first.store().store_writes() > 0,
        "summaries must be persisted"
    );
    drop(first);

    // Second "process" over the same directory and the same stream:
    // step 1 loads instead of executing, and the previous process's
    // learnt cores import once the deterministic term trajectory
    // catches up.
    let mut second = ChurnSession::new(router(), props(), pruning_cfg, ReuseLevel::Sessions)
        .expect("search-based properties")
        .with_store_path(&tmp.0)
        .expect("store dir");
    let mut got2 = vec![second.verify()];
    for d in &stream {
        got2.push(second.apply_delta(d).expect("valid delta"));
    }
    for (e, g) in expect.iter().zip(&got2) {
        for (er, gr) in e.reports.iter().zip(&g.reports) {
            assert_identical(er, gr, &format!("restarted process {}", er.property));
        }
    }
    assert!(
        second.store().store_loads() > 0,
        "restart must load summaries from disk"
    );
    assert_eq!(
        second.store().misses(),
        0,
        "the restarted process must never re-execute a stage"
    );
    assert!(
        second.stats().cores_imported > 0,
        "persisted cores must import on restart: {:?}",
        second.stats()
    );
}
