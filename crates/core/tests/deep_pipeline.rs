//! Regression tests for the fig4a stack-overflow shape: pipelines
//! whose composed terms are thousands of operator nodes deep must
//! verify inside a **1 MiB** thread stack. The original failure was a
//! stack overflow in the recursive term-DAG traversals (blast, eval,
//! width, printing) triggered by the `+IPoption3` row of the Fig. 4(a)
//! reproduction — an IP-option walk whose symbolic-offset stores chain
//! ite terms over an ever-deepening accumulator. These tests pin both
//! the specific engine and the generic (monolithic) baseline to small
//! stacks so any reintroduced recursion on term depth fails fast.

use dataplane::{Element, Pipeline};
use dpir::ProgramBuilder;
use symexec::SymConfig;
use verifier::{GenericOutcome, Property, Report, Verifier, VerifyConfig};

const STACK: usize = 1 << 20;

fn in_small_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(STACK)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("must not overflow a 1 MiB stack")
}

fn small_window() -> VerifyConfig {
    VerifyConfig {
        sym: SymConfig {
            max_pkt_bytes: 24,
            min_pkt_len: 20,
            // The deep-chain element alone is ~12k straight-line
            // instructions; the default 10k budget would abort step 1.
            max_instrs_per_path: 50_000,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// A straight-line element folding `n` arithmetic rounds into one
/// register — a term `~2n` operators deep — then asserting a
/// tautology over it, so the deep term reaches the solver both in
/// step 1 (crash-branch pruning) and step 2 (the suspect query).
fn deep_chain_element(n: usize) -> Element {
    let mut b = ProgramBuilder::new("deepchain");
    let byte = b.pkt_load(8, 0u64);
    let mut acc = b.zext(8, 32, byte);
    for i in 0..n as u64 {
        let x = b.add(32, acc, i | 1);
        let s = b.shl(32, x, (i % 3) + 1);
        acc = b.bin(dpir::BinOp::Xor, 32, x, s);
    }
    let low = b.and(32, acc, 1u64);
    let fine = b.ule(32, low, 1u64);
    b.assert_(fine, "deep tautology");
    b.emit(0);
    Element::straight("deepchain", b.build().expect("valid"))
}

/// Specific engine: step 1 + step 2 on a ~8000-operator term, 1 MiB
/// stack, must prove.
#[test]
fn deep_chain_specific_1mib() {
    let p = Pipeline::new("deepchain").push_sink(deep_chain_element(4000));
    let rep = in_small_stack(move || {
        Verifier::new(&p)
            .config(small_window())
            .check(Property::CrashFreedom)
            .expect_verify()
    });
    assert_eq!(rep.verdict.label(), "proved");
}

/// The fig4a `+IPoption` shape: each stage loads at an
/// accumulator-derived offset, mixes, and stores back at another
/// symbolic in-window offset — so packet-byte terms become ite chains
/// over a deepening accumulator.
fn ipoption_like_pipeline(stages: usize) -> Pipeline {
    let mut p = Pipeline::new("ipopt-like");
    for k in 0..stages {
        let mut b = ProgramBuilder::new(&format!("opt{k}"));
        let acc = b.meta_load(0);
        let lo = b.and(32, acc, 7u64);
        let off32 = b.add(32, lo, (k % 8) as u64);
        let off = b.trunc(32, 16, off32);
        let v = b.pkt_load(8, off);
        let wide = b.zext(8, 32, v);
        let acc2 = b.add(32, acc, wide);
        let dst32 = b.add(32, lo, 8u64);
        let dst = b.trunc(32, 16, dst32);
        let byte = b.trunc(32, 8, acc2);
        b.pkt_store(8, dst, byte);
        b.meta_store(0, acc2);
        b.emit(0);
        let e = Element::straight(&format!("opt{k}"), b.build().expect("valid"));
        p = if k + 1 == stages {
            p.push_sink(e)
        } else {
            p.push(e)
        };
    }
    p
}

/// Specific engine on the IP-option shape, 1 MiB stack.
#[test]
fn ipoption_shape_specific_1mib() {
    let p = ipoption_like_pipeline(40);
    let rep = in_small_stack(move || {
        Verifier::new(&p)
            .config(small_window())
            .check(Property::CrashFreedom)
            .expect_verify()
    });
    assert_eq!(rep.verdict.label(), "proved");
}

/// Generic (monolithic) baseline on the IP-option shape — the exact
/// fig4a column that used to overflow — budget-capped, 1 MiB stack.
#[test]
fn ipoption_shape_generic_1mib() {
    let p = ipoption_like_pipeline(12);
    let run = in_small_stack(move || {
        let cfg = VerifyConfig {
            sym: SymConfig {
                max_pkt_bytes: 24,
                min_pkt_len: 20,
                max_states: 20_000,
                exact_forks: false,
                ..Default::default()
            },
            ..Default::default()
        };
        match Verifier::new(&p)
            .config(cfg)
            .check(Property::Generic { loop_cap: 16 })
        {
            Report::Generic(g) => g,
            other => panic!("expected generic report, got {other:?}"),
        }
    });
    // Either outcome is fine — the regression is *finishing* (not
    // overflowing) within a bounded stack.
    assert!(run.report.states > 0);
    assert!(matches!(
        run.report.outcome,
        GenericOutcome::Completed | GenericOutcome::Exceeded
    ));
}
