//! Map-model semantics tests: the abstract model over-approximates the
//! concrete stores (every concrete behavior is covered by some
//! segment), and the table model agrees with concrete table lookups.

use bvsolve::{eval, Assignment, TermPool};
use dpir::{run_program, ExecResult, MapDecl, MapRuntime, PacketData, Program, ProgramBuilder};
use proptest::prelude::*;
use std::collections::HashMap;
use symexec::{execute, AbstractMapModel, SegOutcome, SymConfig, SymInput, TableMapModel};

/// A minimal concrete store for the differential test (symexec cannot
/// depend on the dataplane crate, which sits above it).
#[derive(Default)]
struct MiniStore {
    entries: HashMap<u64, u64>,
}

impl MapRuntime for MiniStore {
    fn read(&mut self, _m: dpir::MapId, key: u64) -> Option<u64> {
        self.entries.get(&key).copied()
    }
    fn write(&mut self, _m: dpir::MapId, key: u64, value: u64) -> bool {
        self.entries.insert(key, value);
        true
    }
    fn test(&mut self, _m: dpir::MapId, key: u64) -> bool {
        self.entries.contains_key(&key)
    }
    fn expire(&mut self, _m: dpir::MapId, key: u64) {
        self.entries.remove(&key);
    }
}

/// An element that reads a map with the packet's first byte as key and
/// routes on (found, value>100).
fn map_router() -> Program {
    let mut b = ProgramBuilder::new("map_router");
    let m = b.map(MapDecl {
        name: "t".into(),
        key_width: 8,
        value_width: 8,
        capacity: 16,
        is_static: false,
    });
    let len = b.pkt_len();
    let empty = b.ult(16, len, 1u64);
    let (e, ok) = b.fork(empty);
    let _ = e;
    b.drop_();
    b.switch_to(ok);
    let key = b.pkt_load(8, 0u64);
    let (found, val) = b.map_read(m, key);
    let (hit, miss) = b.fork(found);
    let _ = hit;
    let big = b.ult(8, 100u64, val);
    let (big_bb, small_bb) = b.fork(big);
    let _ = big_bb;
    b.emit(2);
    b.switch_to(small_bb);
    b.emit(1);
    b.switch_to(miss);
    b.emit(0);
    b.build().expect("valid")
}

fn cfg() -> SymConfig {
    SymConfig {
        max_pkt_bytes: 8,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Over-approximation: whatever port a concrete run takes (for any
    /// map contents), some abstract segment takes the same port with a
    /// constraint the packet satisfies (modulo havoc variables, which
    /// are existential).
    #[test]
    fn abstract_model_covers_concrete_runs(
        key in any::<u8>(),
        entries in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..8),
    ) {
        let prog = map_router();
        // Concrete run against a real store.
        let mut rt = MiniStore::default();
        for (k, v) in &entries {
            rt.entries.insert(*k as u64, *v as u64);
        }
        let mut pkt = PacketData::new(vec![key]);
        let out = run_program(&prog, &mut pkt, &mut rt, 1000);
        let ExecResult::Emitted(port) = out.result else {
            panic!("router always emits: {:?}", out.result)
        };

        // Symbolic segments with the abstract model.
        let mut pool = TermPool::new();
        let c = cfg();
        let input = SymInput::fresh(&mut pool, &c, "e");
        let mut model = AbstractMapModel::new();
        let rep = execute(&mut pool, &prog, &input, &mut model, &c).expect("ok");

        // A segment with the same port must exist whose *packet-only*
        // constraints hold for this packet (havoc vars are free).
        let mut a = Assignment::new();
        a.set(input.pkt_byte_vars[0], key as u64);
        a.set(input.len_var, 1);
        let covered = rep.segments.iter().any(|s| {
            s.outcome == SegOutcome::Emit(port)
                && s.constraint.iter().all(|&t| {
                    // Constraints mentioning havoc vars are satisfiable
                    // by construction (havocs are unconstrained); only
                    // check pure-packet conjuncts here.
                    let fv = pool.free_vars(t);
                    let packet_only = fv.iter().all(|v| {
                        input.pkt_byte_vars.contains(v) || *v == input.len_var
                    });
                    !packet_only || eval(&pool, t, &a) == 1
                })
        });
        prop_assert!(covered, "port {port} uncovered for key {key}");
    }

    /// The table model's ITE summary computes exactly the concrete
    /// lookup result.
    #[test]
    fn table_model_matches_concrete_lookup(
        key in any::<u8>(),
        entries in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..8),
    ) {
        let mut pool = TermPool::new();
        let mut tm = TableMapModel::new();
        // First binding of a duplicate key wins in the ITE chain; make
        // keys unique to sidestep duplicate semantics.
        let mut uniq: Vec<(u64, u64)> = Vec::new();
        for (k, v) in &entries {
            if !uniq.iter().any(|(k2, _)| *k2 == *k as u64) {
                uniq.push((*k as u64, *v as u64));
            }
        }
        tm.set_table(dpir::MapId(0), uniq.clone());
        let decl = MapDecl {
            name: "t".into(),
            key_width: 8,
            value_width: 8,
            capacity: 16,
            is_static: true,
        };
        let kvar = pool.fresh_var("k", 8);
        let branches =
            symexec::MapModel::read(&mut tm, &mut pool, dpir::MapId(0), &decl, kvar);
        prop_assert_eq!(branches.len(), 1);
        let mut a = Assignment::new();
        a.set(0, key as u64);
        let found = eval(&pool, branches[0].flag, &a);
        let value = eval(&pool, branches[0].value, &a);
        let expect = uniq.iter().find(|(k, _)| *k == key as u64);
        match expect {
            Some((_, v)) => {
                prop_assert_eq!(found, 1);
                prop_assert_eq!(value, *v);
            }
            None => prop_assert_eq!(found, 0),
        }
    }
}

#[test]
fn abstract_model_segments_enumerate_all_ports() {
    let prog = map_router();
    let mut pool = TermPool::new();
    let c = cfg();
    let input = SymInput::fresh(&mut pool, &c, "e");
    let mut model = AbstractMapModel::new();
    let rep = execute(&mut pool, &prog, &input, &mut model, &c).expect("ok");
    let mut ports: Vec<u8> = rep
        .segments
        .iter()
        .filter_map(|s| match s.outcome {
            SegOutcome::Emit(p) => Some(p),
            _ => None,
        })
        .collect();
    ports.sort_unstable();
    ports.dedup();
    assert_eq!(ports, vec![0, 1, 2], "havoc exposes every routing branch");
}
