//! Concolic differential tests: for random concrete packets, exactly
//! one symbolic segment's constraint must hold, and that segment's
//! transform (output bytes, length, metadata, outcome, instruction
//! count) must match the concrete interpreter bit-for-bit.
//!
//! This is the soundness anchor of the whole verifier: step 1 summaries
//! are trusted to *be* the element's semantics.

use bvsolve::{eval, Assignment, TermPool};
use dpir::{
    run_program, BinOp, CrashReason, ExecResult, NullMapRuntime, PacketData, Program,
    ProgramBuilder,
};
use proptest::prelude::*;
use symexec::{execute, AbstractMapModel, SegOutcome, Segment, SymConfig, SymInput};

const WINDOW: usize = 24;

fn cfg() -> SymConfig {
    SymConfig {
        max_pkt_bytes: WINDOW,
        max_instrs_per_path: 500,
        ..Default::default()
    }
}

/// Builds the assignment binding the symbolic input to a concrete packet.
fn bind(input: &SymInput, pkt: &PacketData) -> Assignment {
    let mut a = Assignment::new();
    for (i, &vid) in input.pkt_byte_vars.iter().enumerate() {
        let b = pkt.bytes.get(i).copied().unwrap_or(0);
        a.set(vid, b as u64);
    }
    a.set(input.len_var, pkt.bytes.len() as u64);
    for (s, &vid) in input.meta_vars.iter().enumerate() {
        a.set(vid, pkt.meta[s] as u64);
    }
    a
}

fn matching_segments<'a>(pool: &TermPool, segs: &'a [Segment], a: &Assignment) -> Vec<&'a Segment> {
    segs.iter()
        .filter(|s| s.constraint.iter().all(|&c| eval(pool, c, a) == 1))
        .collect()
}

/// Runs both executors and checks agreement for the given packet.
fn check_agreement(prog: &Program, bytes: Vec<u8>) {
    let mut pool = TermPool::new();
    let c = cfg();
    let input = SymInput::fresh(&mut pool, &c, "e");
    let mut model = AbstractMapModel::new();
    let report = execute(&mut pool, prog, &input, &mut model, &c).expect("symexec ok");

    let mut pkt = PacketData::new(bytes.clone());
    pkt.capacity = WINDOW;
    let mut maps = NullMapRuntime;
    let concrete = run_program(prog, &mut pkt, &mut maps, 500);

    let a = bind(&input, &PacketData::new(bytes));
    let matches = matching_segments(&pool, &report.segments, &a);
    assert_eq!(
        matches.len(),
        1,
        "exactly one segment must cover each concrete input (got {})",
        matches.len()
    );
    let seg = matches[0];

    // Outcome agreement.
    match (concrete.result, seg.outcome) {
        (ExecResult::Emitted(p1), SegOutcome::Emit(p2)) => assert_eq!(p1, p2),
        (ExecResult::Dropped, SegOutcome::Drop) => {}
        (ExecResult::Crashed(r1), SegOutcome::Crash(r2)) => assert_eq!(r1, r2),
        (c, s) => panic!("outcome mismatch: concrete {c:?} vs symbolic {s:?}"),
    }

    // Instruction count agreement.
    assert_eq!(concrete.instrs, seg.instrs, "instruction count");

    // Packet transform agreement (only meaningful for normal endings).
    if matches!(
        concrete.result,
        ExecResult::Emitted(_) | ExecResult::Dropped
    ) {
        let out_len = eval(&pool, seg.len_out, &a);
        assert_eq!(out_len, pkt.bytes.len() as u64, "output length");
        for i in 0..pkt.bytes.len().min(WINDOW) {
            let sym_b = eval(&pool, seg.pkt_out[i], &a);
            assert_eq!(sym_b, pkt.bytes[i] as u64, "output byte {i}");
        }
        for s in 0..dpir::META_SLOTS {
            let sym_m = eval(&pool, seg.meta_out[s], &a);
            assert_eq!(sym_m, pkt.meta[s] as u64, "meta slot {s}");
        }
    }
}

/// A small TTL-decrement-like element: checks length, loads a byte,
/// drops if ≤ 1, otherwise decrements, stores back and emits.
fn ttl_like() -> Program {
    let mut b = ProgramBuilder::new("ttl");
    let len = b.pkt_len();
    let shortc = b.ult(16, len, 4u64);
    let (short_bb, cont) = b.fork(shortc);
    let _ = short_bb;
    b.drop_();
    b.switch_to(cont);
    let ttl = b.pkt_load(8, 2u64);
    let low = b.ule(8, ttl, 1u64);
    let (low_bb, ok) = b.fork(low);
    let _ = low_bb;
    b.drop_();
    b.switch_to(ok);
    let dec = b.sub(8, ttl, 1u64);
    b.pkt_store(8, 2u64, dec);
    b.emit(0);
    b.build().expect("valid")
}

/// An element with arithmetic on a 16-bit field and a division whose
/// divisor comes from the packet (crash class: DivByZero).
fn div_elem() -> Program {
    let mut b = ProgramBuilder::new("div");
    let len = b.pkt_len();
    let shortc = b.ult(16, len, 4u64);
    let (short_bb, cont) = b.fork(shortc);
    let _ = short_bb;
    b.drop_();
    b.switch_to(cont);
    let v = b.pkt_load(16, 0u64);
    let d = b.pkt_load(8, 3u64);
    let d16 = b.zext(8, 16, d);
    let q = b.bin(BinOp::UDiv, 16, v, d16);
    b.pkt_store(16, 0u64, q);
    b.emit(1);
    b.build().expect("valid")
}

/// A looping element: sums bytes 4..4+n where n = byte 0 & 7, via a
/// metadata cursor (Condition 1 style).
fn loop_elem() -> Program {
    let mut b = ProgramBuilder::new("loop");
    let len = b.pkt_len();
    let shortc = b.ult(16, len, 16u64);
    let (short_bb, cont) = b.fork(shortc);
    let _ = short_bb;
    b.drop_();
    b.switch_to(cont);
    let n8 = b.pkt_load(8, 0u64);
    let n = b.and(8, n8, 0x07u64);
    let n32 = b.zext(8, 32, n);
    b.meta_store(0, 0u64); // i = 0
    b.meta_store(1, 0u64); // acc = 0
    let hdr = b.new_block();
    let body = b.new_block();
    let done = b.new_block();
    b.jump(hdr);
    b.switch_to(hdr);
    let i = b.meta_load(0);
    let c = b.ult(32, i, n32);
    b.branch(c, body, done);
    b.switch_to(body);
    let i2 = b.meta_load(0);
    let i16 = b.trunc(32, 16, i2);
    let off = b.add(16, i16, 4u64);
    let v = b.pkt_load(8, off);
    let v32 = b.zext(8, 32, v);
    let acc = b.meta_load(1);
    let acc2 = b.add(32, acc, v32);
    b.meta_store(1, acc2);
    let i3 = b.add(32, i2, 1u64);
    b.meta_store(0, i3);
    b.jump(hdr);
    b.switch_to(done);
    b.emit(0);
    b.build().expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ttl_agrees(bytes in proptest::collection::vec(any::<u8>(), 0..WINDOW)) {
        check_agreement(&ttl_like(), bytes);
    }

    #[test]
    fn div_agrees(bytes in proptest::collection::vec(any::<u8>(), 0..WINDOW)) {
        check_agreement(&div_elem(), bytes);
    }

    #[test]
    fn loop_agrees(bytes in proptest::collection::vec(any::<u8>(), 0..WINDOW)) {
        check_agreement(&loop_elem(), bytes);
    }
}

#[test]
fn crash_segments_enumerate_all_reasons() {
    let mut pool = TermPool::new();
    let c = cfg();
    let input = SymInput::fresh(&mut pool, &c, "e");
    let mut model = AbstractMapModel::new();
    let report = execute(&mut pool, &div_elem(), &input, &mut model, &c).expect("ok");
    let mut reasons: Vec<CrashReason> = report
        .segments
        .iter()
        .filter_map(|s| match s.outcome {
            SegOutcome::Crash(r) => Some(r),
            _ => None,
        })
        .collect();
    reasons.sort_by_key(|r| format!("{r:?}"));
    reasons.dedup();
    // div element: no OobRead possible (length-checked), but DivByZero is.
    assert!(reasons.contains(&CrashReason::DivByZero));
    assert!(!reasons.contains(&CrashReason::OobRead));
}

#[test]
fn segment_constraints_are_disjoint_on_samples() {
    // Segments partition the input space: sample packets and check no
    // packet satisfies two segment constraints.
    let prog = ttl_like();
    let mut pool = TermPool::new();
    let c = cfg();
    let input = SymInput::fresh(&mut pool, &c, "e");
    let mut model = AbstractMapModel::new();
    let report = execute(&mut pool, &prog, &input, &mut model, &c).expect("ok");
    for seed in 0..50u64 {
        let n = (seed % WINDOW as u64) as usize;
        let bytes: Vec<u8> = (0..n)
            .map(|i| (seed.wrapping_mul(31) as u8).wrapping_add(i as u8))
            .collect();
        let a = bind(&input, &PacketData::new(bytes));
        let m = matching_segments(&pool, &report.segments, &a);
        assert_eq!(m.len(), 1, "seed {seed}");
    }
}
