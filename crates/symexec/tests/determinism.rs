//! Pins the executor's determinism guarantee (see the `executor`
//! module docs): identical `(program, input, model, cfg)` from an
//! identical pool state must reproduce the pool and the segments
//! exactly. The verifier's content-addressed summary store is sound
//! only while this holds.

use bvsolve::TermPool;
use dpir::{MapDecl, Program, ProgramBuilder};
use symexec::{
    execute, AbstractMapModel, ExecReport, MapModel, SymConfig, SymInput, TableMapModel,
};

fn cfg() -> SymConfig {
    SymConfig {
        max_pkt_bytes: 24,
        ..Default::default()
    }
}

/// A branching program exercising packet loads, arithmetic, an assert
/// and two map operations (one static-table candidate, one private).
fn busy_program() -> Program {
    let mut b = ProgramBuilder::new("busy");
    let table = b.map(MapDecl {
        name: "routes".into(),
        key_width: 32,
        value_width: 32,
        capacity: 16,
        is_static: true,
    });
    let flows = b.map(MapDecl {
        name: "flows".into(),
        key_width: 32,
        value_width: 32,
        capacity: 16,
        is_static: false,
    });
    let v = b.pkt_load(8, 0u64);
    let ok = b.ne(8, v, 0u64);
    b.assert_(ok, "nonzero lead byte");
    let v32 = b.zext(8, 32, v);
    let (found, route) = b.map_read(table, v32);
    let _ = found;
    // Write the route back into the packet so the table contents are
    // observable in `pkt_out`, not just in dead registers.
    b.pkt_store(32, 4u64, route);
    let (f2, _priv_val) = b.map_read(flows, route);
    let hot = b.eq(1, f2, 1u64);
    let (t, e) = b.fork(hot);
    let _ = t;
    b.emit(1);
    b.switch_to(e);
    b.emit(0);
    b.build().expect("valid")
}

fn run_once(model: &mut dyn MapModel) -> (TermPool, ExecReport, SymInput) {
    let mut pool = TermPool::new();
    let cfg = cfg();
    let input = SymInput::fresh(&mut pool, &cfg, "e");
    let rep = execute(&mut pool, &busy_program(), &input, model, &cfg).expect("executes");
    (pool, rep, input)
}

fn assert_identical(a: &(TermPool, ExecReport, SymInput), b: &(TermPool, ExecReport, SymInput)) {
    let (pa, ra, ia) = a;
    let (pb, rb, ib) = b;
    assert_eq!(pa.len(), pb.len(), "term counts differ");
    assert_eq!(pa.num_vars(), pb.num_vars(), "var counts differ");
    for v in 0..pa.num_vars() as u32 {
        assert_eq!(pa.var_name(v), pb.var_name(v), "var {v} name");
        assert_eq!(pa.var_width(v), pb.var_width(v), "var {v} width");
    }
    assert_eq!(ra.states, rb.states);
    assert_eq!(ra.pruned, rb.pruned);
    // Debug includes every TermId: equal strings ⇒ the same terms were
    // interned in the same order and the segments are byte-identical.
    assert_eq!(format!("{:?}", ra.segments), format!("{:?}", rb.segments));
    assert_eq!(format!("{ia:?}"), format!("{ib:?}"));
    // And the ids resolve to the same term *content*, not just the
    // same positions.
    assert_eq!(render(pa, ra), render(pb, rb));
}

/// Renders every segment's terms through the pool, so two pools are
/// compared on term content rather than on [`bvsolve::TermId`] values.
fn render(pool: &TermPool, rep: &ExecReport) -> String {
    let mut out = String::new();
    for seg in &rep.segments {
        out.push_str(&format!("{:?} {}:", seg.outcome, seg.instrs));
        for &c in &seg.constraint {
            out.push_str(&bvsolve::print_term(pool, c));
            out.push(';');
        }
        out.push('|');
        for &t in &seg.pkt_out {
            out.push_str(&bvsolve::print_term(pool, t));
            out.push(',');
        }
        out.push_str(&bvsolve::print_term(pool, seg.len_out));
        out.push('\n');
    }
    out
}

#[test]
fn abstract_model_runs_reproduce_exactly() {
    let a = run_once(&mut AbstractMapModel::new());
    let b = run_once(&mut AbstractMapModel::new());
    assert_identical(&a, &b);
}

#[test]
fn table_model_runs_reproduce_exactly() {
    let mk = || {
        let mut m = TableMapModel::new();
        m.set_table(dpir::MapId(0), vec![(1, 10), (2, 20), (7, 70)]);
        m
    };
    let a = run_once(&mut mk());
    let b = run_once(&mut mk());
    assert_identical(&a, &b);
}

#[test]
fn different_tables_change_the_summary() {
    let mut m1 = TableMapModel::new();
    m1.set_table(dpir::MapId(0), vec![(1, 10)]);
    let mut m2 = TableMapModel::new();
    m2.set_table(dpir::MapId(0), vec![(1, 11)]);
    let a = run_once(&mut m1);
    let b = run_once(&mut m2);
    assert_ne!(
        render(&a.0, &a.1),
        render(&b.0, &b.1),
        "table contents must be observable in the summary"
    );
}
