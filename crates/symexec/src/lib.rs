//! # symexec — symbolic execution of dataplane IR
//!
//! This crate is the engine behind verification **step 1** (paper §3.1):
//! it executes one element (or loop body) with a fully unconstrained
//! symbolic packet and produces, for every feasible *segment* through the
//! element, a [`Segment`] summary:
//!
//! * the **path constraint** — bitvector terms over the symbolic input
//!   that select this segment,
//! * the **symbolic state transform** — output packet bytes, length and
//!   metadata as terms over the input,
//! * the **outcome** (emit/drop/crash/fuel-exhausted) and the exact
//!   **instruction count** (for bounded-execution),
//! * a **log of map operations** with their key/value terms (for the
//!   mutable-private-state analysis of §3.4).
//!
//! ## Map models
//!
//! Data-structure accesses go through a pluggable [`MapModel`]:
//!
//! * [`AbstractMapModel`] — the paper's Condition 2/3 abstraction: reads
//!   return *havoced* (fresh, unconstrained) symbolic values; internals
//!   of the store are never executed. This is what makes the
//!   dataplane-specific verifier scale.
//! * [`TableMapModel`] — a static map with known (configuration)
//!   contents, summarized as an if-then-else chain over the entries;
//!   used for filtering proofs under a specific configuration.
//! * [`ForkingMapModel`] — models what a *generic* symbolic-execution
//!   engine does when it executes data-structure code directly: every
//!   lookup forks per slot. This is the baseline that reproduces the
//!   exponential blow-ups of Fig. 4(a)/(b).
//!
//! ## Packet model
//!
//! The symbolic packet is a fixed window of byte variables plus a
//! symbolic 16-bit length. Loads/stores at symbolic offsets become
//! if-then-else selections over the window; out-of-bounds accesses fork
//! a crash segment — precisely the crash class the verifier hunts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod executor;
mod input;
mod mapmodel;
mod segment;

pub use executor::{execute, ExecReport, SymError};
pub use input::{SymConfig, SymInput};
pub use mapmodel::{AbstractMapModel, ForkingMapModel, MapBranch, MapModel, TableMapModel};
pub use segment::{MapOpKind, MapOpRecord, SegOutcome, Segment};
