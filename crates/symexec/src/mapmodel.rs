//! Map models: how the symbolic executor treats key/value stores.

use bvsolve::{TermId, TermPool};
use dpir::{MapDecl, MapId};

/// One possible continuation of a map operation: extra path
/// constraints, plus result terms.
#[derive(Debug, Clone)]
pub struct MapBranch {
    /// Constraints to conjoin onto the path.
    pub constraints: Vec<TermId>,
    /// The `found`/`ok` bit (width 1).
    pub flag: TermId,
    /// The value (reads: map value; writes/tests: unused, `flag` width-1
    /// duplicate is stored for uniformity).
    pub value: TermId,
    /// Havoc variable ids introduced by this branch (value, flag).
    pub havoc_value_var: Option<u32>,
    /// Havoc variable id of the flag, if fresh.
    pub havoc_flag_var: Option<u32>,
}

/// Strategy for map operations during symbolic execution.
pub trait MapModel {
    /// Symbolic `read(key)`: returns the possible `(found, value)`
    /// branches.
    fn read(
        &mut self,
        pool: &mut TermPool,
        map: MapId,
        decl: &MapDecl,
        key: TermId,
    ) -> Vec<MapBranch>;

    /// Symbolic `write(key, value)`: returns the possible `ok` branches.
    fn write(
        &mut self,
        pool: &mut TermPool,
        map: MapId,
        decl: &MapDecl,
        key: TermId,
        value: TermId,
    ) -> Vec<MapBranch>;

    /// Symbolic `test(key)`.
    fn test(
        &mut self,
        pool: &mut TermPool,
        map: MapId,
        decl: &MapDecl,
        key: TermId,
    ) -> Vec<MapBranch>;
}

fn single(flag: TermId, value: TermId) -> Vec<MapBranch> {
    vec![MapBranch {
        constraints: Vec::new(),
        flag,
        value,
        havoc_value_var: None,
        havoc_flag_var: None,
    }]
}

/// The paper's data-structure abstraction (Conditions 2/3): every read
/// returns a **fresh, unconstrained** value — the store's internals are
/// never executed. Sound because the store itself is verified
/// separately (`dataplane::store` tests/proofs), and over-approximate
/// in exactly the way §3.4's sub-step (i) requires.
#[derive(Debug, Default)]
pub struct AbstractMapModel {
    counter: u64,
}

impl AbstractMapModel {
    /// Creates the model.
    pub fn new() -> Self {
        Self::default()
    }

    fn fresh_flag(&mut self, pool: &mut TermPool, map: MapId, what: &str) -> (TermId, u32) {
        let name = format!("m{}.{}{}", map.0, what, self.counter);
        self.counter += 1;
        let t = pool.fresh_var(&name, 1);
        (t, last_var_id(pool))
    }
}

fn last_var_id(pool: &TermPool) -> u32 {
    (pool.num_vars() - 1) as u32
}

impl MapModel for AbstractMapModel {
    fn read(
        &mut self,
        pool: &mut TermPool,
        map: MapId,
        decl: &MapDecl,
        _key: TermId,
    ) -> Vec<MapBranch> {
        let (found, fid) = self.fresh_flag(pool, map, "found");
        let vname = format!("m{}.val{}", map.0, self.counter);
        self.counter += 1;
        let value = pool.fresh_var(&vname, decl.value_width);
        let vid = last_var_id(pool);
        vec![MapBranch {
            constraints: Vec::new(),
            flag: found,
            value,
            havoc_value_var: Some(vid),
            havoc_flag_var: Some(fid),
        }]
    }

    fn write(
        &mut self,
        pool: &mut TermPool,
        map: MapId,
        _decl: &MapDecl,
        _key: TermId,
        _value: TermId,
    ) -> Vec<MapBranch> {
        let (ok, fid) = self.fresh_flag(pool, map, "ok");
        vec![MapBranch {
            constraints: Vec::new(),
            flag: ok,
            value: ok,
            havoc_value_var: None,
            havoc_flag_var: Some(fid),
        }]
    }

    fn test(
        &mut self,
        pool: &mut TermPool,
        map: MapId,
        _decl: &MapDecl,
        _key: TermId,
    ) -> Vec<MapBranch> {
        let (found, fid) = self.fresh_flag(pool, map, "test");
        vec![MapBranch {
            constraints: Vec::new(),
            flag: found,
            value: found,
            havoc_value_var: None,
            havoc_flag_var: Some(fid),
        }]
    }
}

/// A static map with known contents, summarized *without forking* as an
/// if-then-else chain over the entries. Used for filtering proofs with
/// a specific configuration (paper §4 "Filtering") — e.g. an IP
/// forwarding table of 100k entries becomes one ITE term, not 100k
/// execution states.
#[derive(Debug, Default)]
pub struct TableMapModel {
    tables: std::collections::HashMap<u32, Vec<(u64, u64)>>,
}

impl TableMapModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the contents of `map` (pairs of key → value).
    pub fn set_table(&mut self, map: MapId, entries: Vec<(u64, u64)>) {
        self.tables.insert(map.0, entries);
    }

    fn lookup_terms(
        &self,
        pool: &mut TermPool,
        map: MapId,
        decl: &MapDecl,
        key: TermId,
    ) -> (TermId, TermId) {
        let entries = self.tables.get(&map.0).cloned().unwrap_or_default();
        let mut found = pool.mk_false();
        let mut value = pool.mk_const(decl.value_width, 0);
        // Build the chain back-to-front so the first entry wins.
        for &(k, v) in entries.iter().rev() {
            let kc = pool.mk_const(decl.key_width, k);
            let vc = pool.mk_const(decl.value_width, v);
            let hit = pool.mk_eq(key, kc);
            found = pool.mk_bool_or(found, hit);
            value = pool.mk_ite(hit, vc, value);
        }
        (found, value)
    }
}

impl MapModel for TableMapModel {
    fn read(
        &mut self,
        pool: &mut TermPool,
        map: MapId,
        decl: &MapDecl,
        key: TermId,
    ) -> Vec<MapBranch> {
        let (found, value) = self.lookup_terms(pool, map, decl, key);
        single(found, value)
    }

    fn write(
        &mut self,
        pool: &mut TermPool,
        _map: MapId,
        _decl: &MapDecl,
        _key: TermId,
        _value: TermId,
    ) -> Vec<MapBranch> {
        // Static state is read-only for the dataplane (Table 1); a write
        // is refused, matching the runtime behavior.
        let f = pool.mk_false();
        single(f, f)
    }

    fn test(
        &mut self,
        pool: &mut TermPool,
        map: MapId,
        decl: &MapDecl,
        key: TermId,
    ) -> Vec<MapBranch> {
        let (found, _) = self.lookup_terms(pool, map, decl, key);
        single(found, found)
    }
}

/// The **generic-baseline** model: reproduces what a general-purpose
/// engine does when it symbolically executes data-structure internals.
///
/// Each lookup walks the store's slots one comparison at a time, so a
/// symbolic key forks one state per slot (plus a miss state) — the
/// behavior that makes vanilla S2E exceed 12 hours the moment a large
/// table or a hash map enters the pipeline (Fig. 4(a)/(b)).
#[derive(Debug)]
pub struct ForkingMapModel {
    /// For static maps: concrete contents (fork per entry).
    tables: std::collections::HashMap<u32, Vec<(u64, u64)>>,
    /// For private maps: number of modeled slots (fork per slot with
    /// havoced contents).
    pub private_slots: usize,
    counter: u64,
}

impl ForkingMapModel {
    /// Creates the model; `private_slots` models the occupancy of
    /// private (mutable) maps.
    pub fn new(private_slots: usize) -> Self {
        ForkingMapModel {
            tables: std::collections::HashMap::new(),
            private_slots,
            counter: 0,
        }
    }

    /// Sets concrete contents for a static map.
    pub fn set_table(&mut self, map: MapId, entries: Vec<(u64, u64)>) {
        self.tables.insert(map.0, entries);
    }
}

impl MapModel for ForkingMapModel {
    fn read(
        &mut self,
        pool: &mut TermPool,
        map: MapId,
        decl: &MapDecl,
        key: TermId,
    ) -> Vec<MapBranch> {
        if let Some(entries) = self.tables.get(&map.0).cloned() {
            // One branch per entry + one miss branch.
            let mut out = Vec::with_capacity(entries.len() + 1);
            let mut miss_constraints = Vec::with_capacity(entries.len());
            let tt = pool.mk_true();
            let ff = pool.mk_false();
            for &(k, v) in &entries {
                let kc = pool.mk_const(decl.key_width, k);
                let vc = pool.mk_const(decl.value_width, v);
                let hit = pool.mk_eq(key, kc);
                out.push(MapBranch {
                    constraints: vec![hit],
                    flag: tt,
                    value: vc,
                    havoc_value_var: None,
                    havoc_flag_var: None,
                });
                let ne = pool.mk_not(hit);
                miss_constraints.push(ne);
            }
            let zero = pool.mk_const(decl.value_width, 0);
            out.push(MapBranch {
                constraints: miss_constraints,
                flag: ff,
                value: zero,
                havoc_value_var: None,
                havoc_flag_var: None,
            });
            out
        } else {
            // Private map: walk havoced slots — slot i holds an unknown
            // key; branch i is "key matches slot i's key".
            let mut out = Vec::with_capacity(self.private_slots + 1);
            let tt = pool.mk_true();
            let ff = pool.mk_false();
            let mut miss = Vec::with_capacity(self.private_slots);
            for s in 0..self.private_slots {
                let kname = format!("m{}.slotkey{}_{}", map.0, s, self.counter);
                let vname = format!("m{}.slotval{}_{}", map.0, s, self.counter);
                let sk = pool.fresh_var(&kname, decl.key_width);
                let sv = pool.fresh_var(&vname, decl.value_width);
                let hit = pool.mk_eq(key, sk);
                out.push(MapBranch {
                    constraints: vec![hit],
                    flag: tt,
                    value: sv,
                    havoc_value_var: None,
                    havoc_flag_var: None,
                });
                let ne = pool.mk_not(hit);
                miss.push(ne);
            }
            self.counter += 1;
            let zero = pool.mk_const(decl.value_width, 0);
            out.push(MapBranch {
                constraints: miss,
                flag: ff,
                value: zero,
                havoc_value_var: None,
                havoc_flag_var: None,
            });
            out
        }
    }

    fn write(
        &mut self,
        pool: &mut TermPool,
        map: MapId,
        decl: &MapDecl,
        key: TermId,
        _value: TermId,
    ) -> Vec<MapBranch> {
        if self.tables.contains_key(&map.0) {
            let f = pool.mk_false();
            return single(f, f);
        }
        // Walking the slots again: hit an existing slot (update) or the
        // first free slot (insert) or fail (full) — one fork per case.
        let mut out = Vec::with_capacity(self.private_slots + 1);
        let tt = pool.mk_true();
        let ff = pool.mk_false();
        let mut prev_ne = Vec::new();
        for s in 0..self.private_slots {
            let kname = format!("m{}.wslotkey{}_{}", map.0, s, self.counter);
            let sk = pool.fresh_var(&kname, decl.key_width);
            let hit = pool.mk_eq(key, sk);
            let mut cs = prev_ne.clone();
            cs.push(hit);
            out.push(MapBranch {
                constraints: cs,
                flag: tt,
                value: tt,
                havoc_value_var: None,
                havoc_flag_var: None,
            });
            let ne = pool.mk_not(hit);
            prev_ne.push(ne);
        }
        self.counter += 1;
        out.push(MapBranch {
            constraints: prev_ne,
            flag: ff,
            value: ff,
            havoc_value_var: None,
            havoc_flag_var: None,
        });
        out
    }

    fn test(
        &mut self,
        pool: &mut TermPool,
        map: MapId,
        decl: &MapDecl,
        key: TermId,
    ) -> Vec<MapBranch> {
        self.read(pool, map, decl, key)
            .into_iter()
            .map(|b| MapBranch { value: b.flag, ..b })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decl() -> MapDecl {
        MapDecl {
            name: "t".into(),
            key_width: 32,
            value_width: 8,
            capacity: 16,
            is_static: true,
        }
    }

    #[test]
    fn abstract_model_havocs() {
        let mut pool = TermPool::new();
        let mut m = AbstractMapModel::new();
        let key = pool.fresh_var("k", 32);
        let branches = m.read(&mut pool, MapId(0), &decl(), key);
        assert_eq!(branches.len(), 1);
        assert!(branches[0].havoc_value_var.is_some());
        assert!(branches[0].constraints.is_empty());
    }

    #[test]
    fn table_model_single_branch_ite() {
        let mut pool = TermPool::new();
        let mut m = TableMapModel::new();
        m.set_table(MapId(0), vec![(1, 10), (2, 20)]);
        let key = pool.fresh_var("k", 32);
        let branches = m.read(&mut pool, MapId(0), &decl(), key);
        assert_eq!(branches.len(), 1);
        // Evaluate the summary at both keys and a miss.
        let mut a = bvsolve::Assignment::new();
        a.set(0, 2);
        assert_eq!(bvsolve::eval(&pool, branches[0].value, &a), 20);
        assert_eq!(bvsolve::eval(&pool, branches[0].flag, &a), 1);
        a.set(0, 9);
        assert_eq!(bvsolve::eval(&pool, branches[0].flag, &a), 0);
    }

    #[test]
    fn forking_model_forks_per_entry() {
        let mut pool = TermPool::new();
        let mut m = ForkingMapModel::new(3);
        m.set_table(MapId(0), vec![(1, 10), (2, 20), (3, 30), (4, 40)]);
        let key = pool.fresh_var("k", 32);
        let branches = m.read(&mut pool, MapId(0), &decl(), key);
        assert_eq!(branches.len(), 5); // 4 entries + miss
    }

    #[test]
    fn forking_model_private_slots() {
        let mut pool = TermPool::new();
        let mut m = ForkingMapModel::new(3);
        let key = pool.fresh_var("k", 32);
        let branches = m.read(&mut pool, MapId(7), &decl(), key);
        assert_eq!(branches.len(), 4); // 3 slots + miss
    }
}
