//! The symbolic interpreter: one IR program → all feasible segments.
//!
//! ## Determinism guarantee
//!
//! [`execute`] is a pure function of its inputs: for identical
//! `(prog, input, cfg)` and a map model that behaves identically (the
//! stock models in [`crate::mapmodel`] are deterministic), two runs
//! starting from identical [`TermPool`] states perform **the same
//! sequence of pool operations** — same variables in the same creation
//! order, same terms, same segments with the same [`bvsolve::TermId`]s.
//! The worklist is an explicit LIFO `Vec`, branch feasibility is
//! decided by the deterministic layered solver, and no step iterates a
//! hash map, so there is no hidden ordering to vary between runs.
//!
//! The verifier's content-addressed summary store depends on this: it
//! keys step-1 summaries by a structural hash of
//! `(program, map mode, table config)` and replays a cached summary by
//! pool migration, which is indistinguishable from re-executing only
//! because execution is reproducible. `crates/symexec/tests/`
//! `determinism.rs` pins the guarantee.

use crate::input::{SymConfig, SymInput};
use crate::mapmodel::MapModel;
use crate::segment::{MapOpKind, MapOpRecord, SegOutcome, Segment};
use bvsolve::{BvSolver, SatVerdict, TermId, TermPool};
use dpir::{BinOp, CrashReason, Instr, Operand, Program, Terminator, UnOp, META_WIDTH};

/// Errors aborting a symbolic execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymError {
    /// The state budget was exceeded — reported exactly like the
    /// paper's "12h+" bars for the generic baseline.
    StateBudget {
        /// States explored before giving up.
        explored: usize,
    },
    /// `PktPush`/`PktPull` with a non-constant byte count (elements in
    /// this repository only use constants; supporting symbolic shifts
    /// would require quadratic select terms).
    SymbolicPushPull,
}

impl std::fmt::Display for SymError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymError::StateBudget { explored } => {
                write!(f, "state budget exceeded after {explored} states")
            }
            SymError::SymbolicPushPull => write!(f, "symbolic push/pull amount unsupported"),
        }
    }
}

impl std::error::Error for SymError {}

/// Result of symbolically executing one program.
#[derive(Debug)]
pub struct ExecReport {
    /// All feasible segments (over-approximate if `exact_forks` is off).
    pub segments: Vec<Segment>,
    /// Total states materialized (the paper's "#states" annotations in
    /// Fig. 4(c)).
    pub states: usize,
    /// Branch targets discarded as infeasible.
    pub pruned: usize,
    /// Solver layer statistics for the ablation bench.
    pub solver_stats: bvsolve::SolverLayerStats,
}

#[derive(Clone)]
struct PathState {
    bb: usize,
    iidx: usize,
    regs: Vec<TermId>,
    pkt: Vec<TermId>,
    len: TermId,
    meta: Vec<TermId>,
    constraint: Vec<TermId>,
    instrs: u64,
    map_ops: Vec<MapOpRecord>,
}

/// Symbolically executes `prog` from `input`, enumerating all feasible
/// segments.
pub fn execute(
    pool: &mut TermPool,
    prog: &Program,
    input: &SymInput,
    model: &mut dyn MapModel,
    cfg: &SymConfig,
) -> Result<ExecReport, SymError> {
    let mut solver = if cfg.exact_forks {
        BvSolver::with_conflict_budget(cfg.fork_conflict_budget)
    } else {
        BvSolver::new()
    };
    let zero_reg = pool.mk_const(1, 0);
    let init = PathState {
        bb: 0,
        iidx: 0,
        regs: prog
            .reg_widths
            .iter()
            .map(|&w| {
                if w == 1 {
                    zero_reg
                } else {
                    // Placeholder; overwritten before read in valid
                    // programs (registers are written before use by the
                    // builder API). Zero keeps semantics defined anyway.
                    zero_reg
                }
            })
            .collect(),
        pkt: input.pkt_bytes.clone(),
        len: input.pkt_len,
        meta: input.meta.clone(),
        constraint: input.base_constraints.clone(),
        instrs: 0,
        map_ops: Vec::new(),
    };
    // Correct register initialization: a zero constant of each width.
    let mut init = init;
    for (i, &w) in prog.reg_widths.iter().enumerate() {
        init.regs[i] = pool.mk_const(w, 0);
    }

    let mut worklist = vec![init];
    let mut segments = Vec::new();
    let mut states = 1usize;
    let mut pruned = 0usize;

    while let Some(mut st) = worklist.pop() {
        if states > cfg.max_states {
            return Err(SymError::StateBudget { explored: states });
        }
        // Run this state until it terminates or forks.
        'state: loop {
            let block = &prog.blocks[st.bb];
            while st.iidx < block.instrs.len() {
                let ins = &block.instrs[st.iidx];
                st.iidx += 1;
                st.instrs += 1;
                if st.instrs > cfg.max_instrs_per_path {
                    segments.push(finish(pool, &st, SegOutcome::FuelExhausted, cfg));
                    break 'state;
                }
                match step(
                    pool,
                    prog,
                    ins,
                    &mut st,
                    model,
                    cfg,
                    &mut solver,
                    &mut states,
                    &mut pruned,
                    &mut worklist,
                    &mut segments,
                ) {
                    Ok(StepFlow::Continue) => {}
                    Ok(StepFlow::EndState) => break 'state,
                    Err(e) => return Err(e),
                }
            }
            // Terminator.
            st.instrs += 1;
            if st.instrs > cfg.max_instrs_per_path {
                segments.push(finish(pool, &st, SegOutcome::FuelExhausted, cfg));
                break 'state;
            }
            match block.term {
                Terminator::Jump(b) => {
                    st.bb = b.index();
                    st.iidx = 0;
                }
                Terminator::Branch { cond, then_, else_ } => {
                    let c = operand(pool, &st, cond, 1);
                    if pool.is_true(c) {
                        st.bb = then_.index();
                        st.iidx = 0;
                        continue 'state;
                    }
                    if pool.is_false(c) {
                        st.bb = else_.index();
                        st.iidx = 0;
                        continue 'state;
                    }
                    // Fork.
                    let notc = pool.mk_not(c);
                    let mut then_st = st.clone();
                    then_st.constraint.push(c);
                    then_st.bb = then_.index();
                    then_st.iidx = 0;
                    let mut else_st = st;
                    else_st.constraint.push(notc);
                    else_st.bb = else_.index();
                    else_st.iidx = 0;
                    for branch in [then_st, else_st] {
                        if feasible(pool, &mut solver, &branch.constraint, cfg) {
                            states += 1;
                            worklist.push(branch);
                        } else {
                            pruned += 1;
                        }
                    }
                    break 'state;
                }
                Terminator::Emit(p) => {
                    let mut seg = finish(pool, &st, SegOutcome::Emit(p), cfg);
                    attach_assumed(pool, prog, &st, &mut seg);
                    segments.push(seg);
                    break 'state;
                }
                Terminator::Drop => {
                    segments.push(finish(pool, &st, SegOutcome::Drop, cfg));
                    break 'state;
                }
                Terminator::Crash(r) => {
                    segments.push(finish(pool, &st, SegOutcome::Crash(r), cfg));
                    break 'state;
                }
            }
        }
    }

    if states > cfg.max_states {
        // Branch materialization was cut short: the exploration is
        // incomplete and must be reported as a budget failure.
        return Err(SymError::StateBudget { explored: states });
    }
    Ok(ExecReport {
        segments,
        states,
        pruned,
        solver_stats: solver.stats(),
    })
}

enum StepFlow {
    Continue,
    EndState,
}

#[allow(clippy::too_many_arguments)]
fn step(
    pool: &mut TermPool,
    prog: &Program,
    ins: &Instr,
    st: &mut PathState,
    model: &mut dyn MapModel,
    cfg: &SymConfig,
    solver: &mut BvSolver,
    states: &mut usize,
    pruned: &mut usize,
    worklist: &mut Vec<PathState>,
    segments: &mut Vec<Segment>,
) -> Result<StepFlow, SymError> {
    match *ins {
        Instr::Bin { op, w, dst, a, b } => {
            let x = operand(pool, st, a, w);
            let y = operand(pool, st, b, w);
            if op.can_crash() {
                let zero = pool.mk_const(w, 0);
                let is_zero = pool.mk_eq(y, zero);
                if pool.is_true(is_zero) {
                    segments.push(finish(
                        pool,
                        st,
                        SegOutcome::Crash(CrashReason::DivByZero),
                        cfg,
                    ));
                    return Ok(StepFlow::EndState);
                }
                if !pool.is_false(is_zero) {
                    // Fork a crash branch for divisor == 0.
                    let mut crash_st = st.clone();
                    crash_st.constraint.push(is_zero);
                    if feasible(pool, solver, &crash_st.constraint, cfg) {
                        *states += 1;
                        segments.push(finish(
                            pool,
                            &crash_st,
                            SegOutcome::Crash(CrashReason::DivByZero),
                            cfg,
                        ));
                    } else {
                        *pruned += 1;
                    }
                    let nz = pool.mk_not(is_zero);
                    st.constraint.push(nz);
                }
            }
            st.regs[dst.index()] = bin_term(pool, op, x, y);
            Ok(StepFlow::Continue)
        }
        Instr::Un { op, w, dst, a } => {
            let x = operand(pool, st, a, w);
            st.regs[dst.index()] = match op {
                UnOp::Not => pool.mk_not(x),
                UnOp::Neg => pool.mk_neg(x),
            };
            Ok(StepFlow::Continue)
        }
        Instr::Mov { w, dst, a } => {
            st.regs[dst.index()] = operand(pool, st, a, w);
            Ok(StepFlow::Continue)
        }
        Instr::Cast {
            kind,
            from,
            to,
            dst,
            a,
        } => {
            let x = operand(pool, st, a, from);
            st.regs[dst.index()] = match kind {
                dpir::CastKind::Zext => pool.mk_zext(x, to),
                dpir::CastKind::Sext => pool.mk_sext(x, to),
                dpir::CastKind::Trunc => {
                    if to == from {
                        x
                    } else {
                        pool.mk_extract(x, to - 1, 0)
                    }
                }
            };
            Ok(StepFlow::Continue)
        }
        Instr::PktLoad { w, dst, off } => {
            let off_t = operand(pool, st, off, 16);
            let k = (w / 8) as usize;
            match bounds_fork(
                pool,
                st,
                off_t,
                k,
                CrashReason::OobRead,
                site_proven_safe(prog, st),
                cfg,
                solver,
                states,
                pruned,
                segments,
            ) {
                BoundsFlow::AlwaysCrash => Ok(StepFlow::EndState),
                BoundsFlow::Proceed => {
                    if cfg.fork_on_symbolic_offset && pool.const_value(off_t).is_none() {
                        // Generic-engine behavior: concretize the offset
                        // by forking one state per feasible value.
                        fork_offsets(
                            pool,
                            st,
                            off_t,
                            k,
                            cfg,
                            solver,
                            states,
                            pruned,
                            worklist,
                            |pool_, s, c| {
                                let v = concat_be(pool_, &s.pkt[c..c + k]);
                                s.regs[dst.index()] = v;
                            },
                        );
                        return Ok(StepFlow::EndState);
                    }
                    let v = load_bytes(pool, st, off_t, k, cfg);
                    st.regs[dst.index()] = v;
                    Ok(StepFlow::Continue)
                }
            }
        }
        Instr::PktStore { w, off, val } => {
            let off_t = operand(pool, st, off, 16);
            let v = operand(pool, st, val, w);
            let k = (w / 8) as usize;
            match bounds_fork(
                pool,
                st,
                off_t,
                k,
                CrashReason::OobWrite,
                site_proven_safe(prog, st),
                cfg,
                solver,
                states,
                pruned,
                segments,
            ) {
                BoundsFlow::AlwaysCrash => Ok(StepFlow::EndState),
                BoundsFlow::Proceed => {
                    if cfg.fork_on_symbolic_offset && pool.const_value(off_t).is_none() {
                        fork_offsets(
                            pool,
                            st,
                            off_t,
                            k,
                            cfg,
                            solver,
                            states,
                            pruned,
                            worklist,
                            |pool_, s, c| {
                                let cc = pool_.mk_const(16, c as u64);
                                store_bytes(pool_, s, cc, k, v, cfg);
                            },
                        );
                        return Ok(StepFlow::EndState);
                    }
                    store_bytes(pool, st, off_t, k, v, cfg);
                    Ok(StepFlow::Continue)
                }
            }
        }
        Instr::PktLen { dst } => {
            st.regs[dst.index()] = st.len;
            Ok(StepFlow::Continue)
        }
        Instr::PktPush { n } => {
            let n_t = operand(pool, st, n, 16);
            let Some(k) = pool.const_value(n_t) else {
                return Err(SymError::SymbolicPushPull);
            };
            let k = k as usize;
            // Capacity check: len + k ≤ window.
            let len32 = pool.mk_zext(st.len, 32);
            let kc = pool.mk_const(32, k as u64);
            let newlen32 = pool.mk_add(len32, kc);
            let cap = pool.mk_const(32, cfg.max_pkt_bytes as u64);
            let fits = pool.mk_ule(newlen32, cap);
            if !fork_crash_unless(
                pool,
                st,
                fits,
                CrashReason::OobWrite,
                false,
                cfg,
                solver,
                states,
                pruned,
                segments,
            ) {
                return Ok(StepFlow::EndState);
            }
            let zero8 = pool.mk_const(8, 0);
            let mut newpkt = Vec::with_capacity(st.pkt.len());
            for i in 0..st.pkt.len() {
                if i < k {
                    newpkt.push(zero8);
                } else {
                    newpkt.push(st.pkt[i - k]);
                }
            }
            st.pkt = newpkt;
            let kc16 = pool.mk_const(16, k as u64);
            st.len = pool.mk_add(st.len, kc16);
            Ok(StepFlow::Continue)
        }
        Instr::PktPull { n } => {
            let n_t = operand(pool, st, n, 16);
            let Some(k) = pool.const_value(n_t) else {
                return Err(SymError::SymbolicPushPull);
            };
            let k = k as usize;
            let kc16 = pool.mk_const(16, k as u64);
            let fits = pool.mk_ule(kc16, st.len);
            if !fork_crash_unless(
                pool,
                st,
                fits,
                CrashReason::OobRead,
                false,
                cfg,
                solver,
                states,
                pruned,
                segments,
            ) {
                return Ok(StepFlow::EndState);
            }
            let zero8 = pool.mk_const(8, 0);
            let mut newpkt = Vec::with_capacity(st.pkt.len());
            for i in 0..st.pkt.len() {
                if i + k < st.pkt.len() {
                    newpkt.push(st.pkt[i + k]);
                } else {
                    newpkt.push(zero8);
                }
            }
            st.pkt = newpkt;
            st.len = pool.mk_sub(st.len, kc16);
            Ok(StepFlow::Continue)
        }
        Instr::MetaLoad { slot, dst } => {
            st.regs[dst.index()] = st.meta[slot as usize];
            Ok(StepFlow::Continue)
        }
        Instr::MetaStore { slot, val } => {
            st.meta[slot as usize] = operand(pool, st, val, META_WIDTH);
            Ok(StepFlow::Continue)
        }
        Instr::MapRead {
            map,
            key,
            found,
            val,
        } => {
            let decl = &prog.maps[map.index()];
            let key_t = operand(pool, st, key, decl.key_width);
            let branches = model.read(pool, map, decl, key_t);
            fork_map_branches(
                pool,
                st,
                branches,
                cfg,
                solver,
                states,
                pruned,
                worklist,
                |pool_, s, br| {
                    s.regs[found.index()] = br.flag;
                    s.regs[val.index()] = br.value;
                    s.map_ops.push(MapOpRecord {
                        map,
                        kind: MapOpKind::Read,
                        key: key_t,
                        value: None,
                        havoc_value_var: br.havoc_value_var,
                        havoc_flag_var: br.havoc_flag_var,
                    });
                    let _ = pool_;
                },
            );
            Ok(StepFlow::EndState)
        }
        Instr::MapWrite { map, key, val, ok } => {
            let decl = &prog.maps[map.index()];
            let key_t = operand(pool, st, key, decl.key_width);
            let val_t = operand(pool, st, val, decl.value_width);
            let branches = model.write(pool, map, decl, key_t, val_t);
            fork_map_branches(
                pool,
                st,
                branches,
                cfg,
                solver,
                states,
                pruned,
                worklist,
                |pool_, s, br| {
                    s.regs[ok.index()] = br.flag;
                    s.map_ops.push(MapOpRecord {
                        map,
                        kind: MapOpKind::Write,
                        key: key_t,
                        value: Some(val_t),
                        havoc_value_var: None,
                        havoc_flag_var: br.havoc_flag_var,
                    });
                    let _ = pool_;
                },
            );
            Ok(StepFlow::EndState)
        }
        Instr::MapTest { map, key, found } => {
            let decl = &prog.maps[map.index()];
            let key_t = operand(pool, st, key, decl.key_width);
            let branches = model.test(pool, map, decl, key_t);
            fork_map_branches(
                pool,
                st,
                branches,
                cfg,
                solver,
                states,
                pruned,
                worklist,
                |pool_, s, br| {
                    s.regs[found.index()] = br.flag;
                    s.map_ops.push(MapOpRecord {
                        map,
                        kind: MapOpKind::Test,
                        key: key_t,
                        value: None,
                        havoc_value_var: None,
                        havoc_flag_var: br.havoc_flag_var,
                    });
                    let _ = pool_;
                },
            );
            Ok(StepFlow::EndState)
        }
        Instr::MapExpire { map, key } => {
            let decl = &prog.maps[map.index()];
            let key_t = operand(pool, st, key, decl.key_width);
            st.map_ops.push(MapOpRecord {
                map,
                kind: MapOpKind::Expire,
                key: key_t,
                value: None,
                havoc_value_var: None,
                havoc_flag_var: None,
            });
            Ok(StepFlow::Continue)
        }
        Instr::Assert { cond, msg } => {
            let c = operand(pool, st, cond, 1);
            if pool.is_true(c) {
                return Ok(StepFlow::Continue);
            }
            if pool.is_false(c) {
                segments.push(finish(
                    pool,
                    st,
                    SegOutcome::Crash(CrashReason::AssertFailed(msg)),
                    cfg,
                ));
                return Ok(StepFlow::EndState);
            }
            let notc = pool.mk_not(c);
            let mut crash_st = st.clone();
            crash_st.constraint.push(notc);
            if feasible(pool, solver, &crash_st.constraint, cfg) {
                *states += 1;
                segments.push(finish(
                    pool,
                    &crash_st,
                    SegOutcome::Crash(CrashReason::AssertFailed(msg)),
                    cfg,
                ));
            } else {
                *pruned += 1;
            }
            st.constraint.push(c);
            Ok(StepFlow::Continue)
        }
    }
}

enum BoundsFlow {
    AlwaysCrash,
    Proceed,
}

/// Whether the static simplifier proved the *current* instruction's
/// packet access in bounds on every feasible path (`st.iidx` was
/// already advanced past it by the instruction loop).
fn site_proven_safe(prog: &Program, st: &PathState) -> bool {
    debug_assert!(st.iidx > 0);
    let site = (st.bb as u32, (st.iidx - 1) as u32);
    // `Facts::safe_sites` comes out of the analysis in (block, instr)
    // order.
    prog.facts.safe_sites.binary_search(&site).is_ok()
}

/// Emits a crash segment for the out-of-bounds case (if feasible) and
/// constrains the surviving path to be in bounds. With `proven_safe`,
/// the crash fork (and its feasibility query) is skipped — the static
/// interval analysis already refuted it — but the surviving path still
/// records the identical in-bounds constraint.
#[allow(clippy::too_many_arguments)]
fn bounds_fork(
    pool: &mut TermPool,
    st: &mut PathState,
    off_t: TermId,
    k: usize,
    reason: CrashReason,
    proven_safe: bool,
    cfg: &SymConfig,
    solver: &mut BvSolver,
    states: &mut usize,
    pruned: &mut usize,
    segments: &mut Vec<Segment>,
) -> BoundsFlow {
    // In-bounds: zext(off) + k ≤ zext(len), computed at width 32 so the
    // addition cannot wrap.
    let off32 = pool.mk_zext(off_t, 32);
    let kc = pool.mk_const(32, k as u64);
    let end = pool.mk_add(off32, kc);
    let len32 = pool.mk_zext(st.len, 32);
    let inb = pool.mk_ule(end, len32);
    if fork_crash_unless(
        pool,
        st,
        inb,
        reason,
        proven_safe,
        cfg,
        solver,
        states,
        pruned,
        segments,
    ) {
        BoundsFlow::Proceed
    } else {
        BoundsFlow::AlwaysCrash
    }
}

/// Forks a crash segment on `¬cond` (if feasible); constrains the
/// current path with `cond`. Returns false if the path itself is dead
/// (cond constant-false). With `skip_crash_branch` the crash fork is
/// elided outright — callers pass it only when a static proof showed
/// `¬cond` infeasible under the path constraints, in which case an
/// exact fork check would have refuted the branch anyway (this only
/// skips the query, and under cheap fork checking it also removes the
/// spurious crash suspects the cheap layers cannot refute).
#[allow(clippy::too_many_arguments)]
fn fork_crash_unless(
    pool: &mut TermPool,
    st: &mut PathState,
    cond: TermId,
    reason: CrashReason,
    skip_crash_branch: bool,
    cfg: &SymConfig,
    solver: &mut BvSolver,
    states: &mut usize,
    pruned: &mut usize,
    segments: &mut Vec<Segment>,
) -> bool {
    if pool.is_true(cond) {
        return true;
    }
    if pool.is_false(cond) {
        segments.push(finish(pool, st, SegOutcome::Crash(reason), cfg));
        return false;
    }
    if skip_crash_branch {
        *pruned += 1;
        st.constraint.push(cond);
        return true;
    }
    let notc = pool.mk_not(cond);
    let mut crash_st = st.clone();
    crash_st.constraint.push(notc);
    if feasible(pool, solver, &crash_st.constraint, cfg) {
        *states += 1;
        segments.push(finish(pool, &crash_st, SegOutcome::Crash(reason), cfg));
    } else {
        *pruned += 1;
    }
    st.constraint.push(cond);
    true
}

/// Applies map-op branches: each feasible branch becomes a new state on
/// the worklist (continuing at the current instruction index).
#[allow(clippy::too_many_arguments)]
fn fork_map_branches(
    pool: &mut TermPool,
    st: &PathState,
    branches: Vec<crate::mapmodel::MapBranch>,
    cfg: &SymConfig,
    solver: &mut BvSolver,
    states: &mut usize,
    pruned: &mut usize,
    worklist: &mut Vec<PathState>,
    mut apply: impl FnMut(&mut TermPool, &mut PathState, &crate::mapmodel::MapBranch),
) {
    for br in branches {
        if *states > cfg.max_states {
            // Stop materializing branches past the budget; the caller
            // reports StateBudget (the "12h+" bars of Fig. 4).
            return;
        }
        let mut s = st.clone();
        s.constraint.extend(br.constraints.iter().copied());
        if !br.constraints.is_empty() && !feasible(pool, solver, &s.constraint, cfg) {
            *pruned += 1;
            continue;
        }
        apply(pool, &mut s, &br);
        *states += 1;
        worklist.push(s);
    }
}

/// Generic-engine offset concretization: one state per feasible offset
/// value, each constrained with `off == s` and continuing at the
/// current instruction position.
#[allow(clippy::too_many_arguments)]
fn fork_offsets(
    pool: &mut TermPool,
    st: &PathState,
    off_t: TermId,
    k: usize,
    cfg: &SymConfig,
    solver: &mut BvSolver,
    states: &mut usize,
    pruned: &mut usize,
    worklist: &mut Vec<PathState>,
    mut apply: impl FnMut(&mut TermPool, &mut PathState, usize),
) {
    let last = cfg.max_pkt_bytes.saturating_sub(k);
    for s in 0..=last {
        if *states > cfg.max_states {
            return;
        }
        let sc = pool.mk_const(16, s as u64);
        let hit = pool.mk_eq(off_t, sc);
        if pool.is_false(hit) {
            continue;
        }
        let mut branch = st.clone();
        branch.constraint.push(hit);
        if !feasible(pool, solver, &branch.constraint, cfg) {
            *pruned += 1;
            continue;
        }
        apply(pool, &mut branch, s);
        *states += 1;
        worklist.push(branch);
    }
}

fn operand(pool: &mut TermPool, st: &PathState, o: Operand, w: u32) -> TermId {
    match o {
        Operand::Reg(r) => st.regs[r.index()],
        Operand::Imm(v) => pool.mk_const(w, v),
    }
}

fn bin_term(pool: &mut TermPool, op: BinOp, x: TermId, y: TermId) -> TermId {
    match op {
        BinOp::Add => pool.mk_add(x, y),
        BinOp::Sub => pool.mk_sub(x, y),
        BinOp::Mul => pool.mk_mul(x, y),
        BinOp::UDiv => pool.mk_udiv(x, y),
        BinOp::URem => pool.mk_urem(x, y),
        BinOp::And => pool.mk_and(x, y),
        BinOp::Or => pool.mk_or(x, y),
        BinOp::Xor => pool.mk_xor(x, y),
        BinOp::Shl => pool.mk_shl(x, y),
        BinOp::Lshr => pool.mk_lshr(x, y),
        BinOp::Eq => pool.mk_eq(x, y),
        BinOp::Ne => pool.mk_ne(x, y),
        BinOp::Ult => pool.mk_ult(x, y),
        BinOp::Ule => pool.mk_ule(x, y),
        BinOp::Slt => pool.mk_slt(x, y),
        BinOp::Sle => pool.mk_sle(x, y),
    }
}

/// Big-endian load of `k` bytes at (possibly symbolic) offset.
fn load_bytes(
    pool: &mut TermPool,
    st: &PathState,
    off_t: TermId,
    k: usize,
    cfg: &SymConfig,
) -> TermId {
    if let Some(c) = pool.const_value(off_t) {
        let c = c as usize;
        if c + k <= st.pkt.len() {
            return concat_be(pool, &st.pkt[c..c + k]);
        }
        // In-bounds branch is infeasible (off beyond window); value is
        // irrelevant but must be well-formed.
        return pool.mk_const((k * 8) as u32, 0);
    }
    // Symbolic offset: select over all window positions.
    let w = (k * 8) as u32;
    let mut acc = pool.mk_const(w, 0);
    let last = cfg.max_pkt_bytes.saturating_sub(k);
    for s in 0..=last {
        let sc = pool.mk_const(16, s as u64);
        let hit = pool.mk_eq(off_t, sc);
        let v = concat_be(pool, &st.pkt[s..s + k]);
        acc = pool.mk_ite(hit, v, acc);
    }
    acc
}

/// Big-endian store of `k` bytes at (possibly symbolic) offset.
fn store_bytes(
    pool: &mut TermPool,
    st: &mut PathState,
    off_t: TermId,
    k: usize,
    val: TermId,
    cfg: &SymConfig,
) {
    // Byte j (big-endian position) of the value.
    let byte = |pool: &mut TermPool, j: usize| {
        let hi = (8 * (k - 1 - j) + 7) as u32;
        let lo = (8 * (k - 1 - j)) as u32;
        pool.mk_extract(val, hi, lo)
    };
    if let Some(c) = pool.const_value(off_t) {
        let c = c as usize;
        for j in 0..k {
            if c + j < st.pkt.len() {
                st.pkt[c + j] = byte(pool, j);
            }
        }
        return;
    }
    let window = cfg.max_pkt_bytes;
    for j in 0..k {
        let bj = byte(pool, j);
        for i in j..window {
            let target = pool.mk_const(16, (i - j) as u64);
            let hit = pool.mk_eq(off_t, target);
            st.pkt[i] = pool.mk_ite(hit, bj, st.pkt[i]);
        }
    }
}

fn concat_be(pool: &mut TermPool, bytes: &[TermId]) -> TermId {
    let mut acc = bytes[0];
    for &b in &bytes[1..] {
        acc = pool.mk_concat(acc, b);
    }
    acc
}

fn feasible(pool: &mut TermPool, solver: &mut BvSolver, cs: &[TermId], cfg: &SymConfig) -> bool {
    if cfg.exact_forks {
        // Treat Unknown (budget) as feasible: over-approximation keeps
        // verification sound (extra suspects, never missed ones).
        !matches!(solver.check(pool, cs), SatVerdict::Unsat(_))
    } else {
        // Cheap layers only.
        let conj = pool.mk_conj(cs);
        if pool.is_false(conj) {
            return false;
        }
        let iv = bvsolve::interval_of(pool, conj);
        !(iv.lo == 0 && iv.hi == 0)
    }
}

/// Attaches statically proven exit facts to an `Emit` segment: the
/// simplifier's exit-length interval becomes `assumed` terms. Each
/// term is implied by the segment's path constraints (the interval
/// analysis quantified over feasible executions under the same entry
/// bounds), so conjoining them downstream never changes
/// satisfiability — they only help the cheap solver layers decide.
fn attach_assumed(pool: &mut TermPool, prog: &Program, st: &PathState, seg: &mut Segment) {
    let Some((lo, hi)) = prog.facts.exit_len else {
        return;
    };
    // Length is a 16-bit term; bounds outside that range are either
    // vacuous (hi ≥ 2^16-1) or come from an infeasible refinement and
    // must not be masked into a wrong constraint.
    if lo > 0 && lo <= 0xffff {
        let lo_c = pool.mk_const(16, lo);
        let t = pool.mk_ule(lo_c, st.len);
        if !pool.is_true(t) {
            seg.assumed.push(t);
        }
    }
    if hi < 0xffff {
        let hi_c = pool.mk_const(16, hi);
        let t = pool.mk_ule(st.len, hi_c);
        if !pool.is_true(t) {
            seg.assumed.push(t);
        }
    }
}

fn finish(pool: &mut TermPool, st: &PathState, outcome: SegOutcome, _cfg: &SymConfig) -> Segment {
    let _ = pool;
    Segment {
        constraint: st.constraint.clone(),
        assumed: Vec::new(),
        outcome,
        pkt_out: st.pkt.clone(),
        len_out: st.len,
        meta_out: st.meta.clone(),
        instrs: st.instrs,
        map_ops: st.map_ops.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::SymInput;
    use crate::mapmodel::AbstractMapModel;
    use dpir::ProgramBuilder;

    fn cfg() -> SymConfig {
        SymConfig {
            max_pkt_bytes: 16,
            ..Default::default()
        }
    }

    fn run(prog: &Program) -> ExecReport {
        let mut pool = TermPool::new();
        let cfg = cfg();
        let input = SymInput::fresh(&mut pool, &cfg, "e");
        let mut model = AbstractMapModel::new();
        execute(&mut pool, prog, &input, &mut model, &cfg).expect("no budget issues")
    }

    #[test]
    fn straight_line_single_segment() {
        let mut b = ProgramBuilder::new("t");
        let _r = b.mov(8, 7u64);
        b.emit(0);
        let p = b.build().expect("valid");
        let rep = run(&p);
        assert_eq!(rep.segments.len(), 1);
        assert_eq!(rep.segments[0].outcome, SegOutcome::Emit(0));
        assert_eq!(rep.segments[0].instrs, 2);
    }

    #[test]
    fn branch_on_packet_byte_forks() {
        // Load byte 0 (forks oob-crash), branch on it.
        let mut b = ProgramBuilder::new("t");
        let v = b.pkt_load(8, 0u64);
        let c = b.ult(8, v, 10u64);
        let (t, e) = b.fork(c);
        let _ = t;
        b.emit(0);
        b.switch_to(e);
        b.drop_();
        let p = b.build().expect("valid");
        let rep = run(&p);
        // Segments: crash (len < 1), emit (byte < 10), drop (byte >= 10).
        assert_eq!(rep.segments.len(), 3);
        let crashes = rep.segments.iter().filter(|s| s.is_crash_suspect()).count();
        assert_eq!(crashes, 1);
    }

    #[test]
    fn infeasible_branch_pruned() {
        // byte < 10 then byte > 200 is infeasible.
        let mut b = ProgramBuilder::new("t");
        let v = b.pkt_load(8, 0u64);
        let c1 = b.ult(8, v, 10u64);
        let (t1, e1) = b.fork(c1);
        let _ = t1;
        let c2 = b.ult(8, 200u64, v);
        let (t2, e2) = b.fork(c2);
        let _ = t2;
        b.emit(1); // unreachable
        b.switch_to(e2);
        b.emit(0);
        b.switch_to(e1);
        b.drop_();
        let p = b.build().expect("valid");
        let rep = run(&p);
        assert!(rep.pruned >= 1, "the contradictory branch must be pruned");
        assert!(!rep
            .segments
            .iter()
            .any(|s| s.outcome == SegOutcome::Emit(1)));
    }

    #[test]
    fn assert_forks_crash_segment() {
        let mut b = ProgramBuilder::new("t");
        let v = b.pkt_load(8, 0u64);
        let ok = b.ne(8, v, 0u64);
        b.assert_(ok, "zero byte");
        b.emit(0);
        let p = b.build().expect("valid");
        let rep = run(&p);
        let crash: Vec<_> = rep
            .segments
            .iter()
            .filter(|s| matches!(s.outcome, SegOutcome::Crash(CrashReason::AssertFailed(_))))
            .collect();
        assert_eq!(crash.len(), 1);
    }

    #[test]
    fn infinite_loop_exhausts_fuel() {
        let mut b = ProgramBuilder::new("t");
        let hdr = b.new_block();
        b.jump(hdr);
        b.switch_to(hdr);
        b.jump(hdr);
        let p = b.build().expect("valid");
        let mut pool = TermPool::new();
        let c = SymConfig {
            max_pkt_bytes: 8,
            max_instrs_per_path: 100,
            ..Default::default()
        };
        let input = SymInput::fresh(&mut pool, &c, "e");
        let mut model = AbstractMapModel::new();
        let rep = execute(&mut pool, &p, &input, &mut model, &c).expect("runs");
        assert_eq!(rep.segments.len(), 1);
        assert_eq!(rep.segments[0].outcome, SegOutcome::FuelExhausted);
    }

    #[test]
    fn map_read_havocs_value() {
        let mut b = ProgramBuilder::new("t");
        let m = b.map(dpir::MapDecl {
            name: "flows".into(),
            key_width: 32,
            value_width: 32,
            capacity: 64,
            is_static: false,
        });
        let key = b.mov(32, 5u64);
        let (_found, val) = b.map_read(m, key);
        let big = b.ult(32, 1000u64, val);
        let (t, e) = b.fork(big);
        let _ = t;
        b.emit(1);
        b.switch_to(e);
        b.emit(0);
        let p = b.build().expect("valid");
        let rep = run(&p);
        // Havoced value can be anything: both emits reachable.
        let ports: Vec<_> = rep
            .segments
            .iter()
            .filter_map(|s| match s.outcome {
                SegOutcome::Emit(p) => Some(p),
                _ => None,
            })
            .collect();
        assert!(ports.contains(&0) && ports.contains(&1));
        // And the read was logged.
        assert!(rep.segments.iter().all(|s| !s.map_ops.is_empty()));
    }

    #[test]
    fn symbolic_offset_load_selects() {
        // offset = (byte0 & 0x7), load the byte at that offset; the
        // loaded value is a select over the window, so a branch on it
        // must be able to go both ways.
        let mut b = ProgramBuilder::new("t");
        let off8 = b.pkt_load(8, 0u64);
        let masked = b.and(8, off8, 0x07u64);
        let off16 = b.zext(8, 16, masked);
        let v = b.pkt_load(8, off16);
        let c = b.eq(8, v, 42u64);
        let (t, e) = b.fork(c);
        let _ = t;
        b.emit(1);
        b.switch_to(e);
        b.emit(0);
        let p = b.build().expect("valid");
        let rep = run(&p);
        let ports: Vec<_> = rep
            .segments
            .iter()
            .filter_map(|s| match s.outcome {
                SegOutcome::Emit(p) => Some(p),
                _ => None,
            })
            .collect();
        assert!(ports.contains(&0) && ports.contains(&1));
    }

    #[test]
    fn state_budget_enforced() {
        // Chain of branches on distinct bytes → 2^8 leaves; budget 20.
        let mut b = ProgramBuilder::new("t");
        for i in 0..8 {
            let v = b.pkt_load(8, i as u64);
            let c = b.ult(8, v, 128u64);
            let (t, e) = b.fork(c);
            let _ = t;
            // then-branch continues the chain; else terminates.
            b.switch_to(e);
            b.drop_();
            b.switch_to(t);
        }
        b.emit(0);
        let p = b.build().expect("valid");
        let mut pool = TermPool::new();
        let c = SymConfig {
            max_pkt_bytes: 16,
            max_states: 20,
            ..Default::default()
        };
        let input = SymInput::fresh(&mut pool, &c, "e");
        let mut model = AbstractMapModel::new();
        let err = execute(&mut pool, &p, &input, &mut model, &c).unwrap_err();
        assert!(matches!(err, SymError::StateBudget { .. }));
    }
}
