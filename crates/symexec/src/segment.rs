//! Segment summaries — the output of verification step 1.

use bvsolve::TermId;
use dpir::{CrashReason, MapId, PortId};

/// How a segment ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegOutcome {
    /// Packet emitted on a port (ownership transferred downstream).
    Emit(PortId),
    /// Packet dropped — a normal ending.
    Drop,
    /// Abnormal termination — a crash-freedom *suspect*.
    Crash(CrashReason),
    /// The per-path instruction budget was exhausted — a
    /// bounded-execution *suspect* (possible infinite loop).
    FuelExhausted,
}

impl SegOutcome {
    /// Whether this outcome makes the segment suspect for crash-freedom.
    pub fn is_crash(self) -> bool {
        matches!(self, SegOutcome::Crash(_))
    }
}

/// Kind of a logged map operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapOpKind {
    /// `read(key)`.
    Read,
    /// `write(key, value)`.
    Write,
    /// `test(key)`.
    Test,
    /// `expire(key)`.
    Expire,
}

/// One map operation observed on a segment, with its symbolic
/// arguments. The §3.4 private-state analysis pattern-matches on these
/// (e.g. `write(k, read(k) + 1)` ⇒ monotonic counter).
#[derive(Debug, Clone)]
pub struct MapOpRecord {
    /// Which map.
    pub map: MapId,
    /// Operation kind.
    pub kind: MapOpKind,
    /// Symbolic key.
    pub key: TermId,
    /// Symbolic value written (writes only).
    pub value: Option<TermId>,
    /// Havoc variable id introduced for the read value (reads only).
    pub havoc_value_var: Option<u32>,
    /// Havoc variable id introduced for the found/ok bit, if any.
    pub havoc_flag_var: Option<u32>,
}

/// A fully-summarized path through one element: the paper's *segment*.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Path constraint: conjunction of width-1 terms over the input.
    pub constraint: Vec<TermId>,
    /// Statically proven facts about the segment's exit state
    /// (currently: packet-length bounds from
    /// `dpir::Facts::exit_len`), as width-1 terms over the input.
    /// Every term here is **implied by `constraint`** on all feasible
    /// models — step-2 composition may conjoin them to sharpen
    /// feasibility checks without changing satisfiability, and
    /// counterexample extraction ignores them. Empty unless the
    /// program came out of the static simplifier.
    pub assumed: Vec<TermId>,
    /// Outcome.
    pub outcome: SegOutcome,
    /// Output packet bytes (terms over the input), window-sized.
    pub pkt_out: Vec<TermId>,
    /// Output packet length term.
    pub len_out: TermId,
    /// Output metadata terms.
    pub meta_out: Vec<TermId>,
    /// Exact instruction count along this segment.
    pub instrs: u64,
    /// Map operations in execution order.
    pub map_ops: Vec<MapOpRecord>,
}

impl Segment {
    /// Whether the segment is suspect for the crash-freedom property.
    pub fn is_crash_suspect(&self) -> bool {
        self.outcome.is_crash()
    }

    /// Whether the segment is suspect for bounded-execution with bound
    /// `imax` (either it exceeds the bound or it never terminated).
    pub fn is_bounded_suspect(&self, imax: u64) -> bool {
        self.outcome == SegOutcome::FuelExhausted || self.instrs > imax
    }
}
