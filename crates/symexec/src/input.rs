//! Symbolic input interface and executor configuration.

use bvsolve::{TermId, TermPool};
use dpir::{META_SLOTS, META_WIDTH};

/// Configuration of a symbolic execution run.
#[derive(Debug, Clone)]
pub struct SymConfig {
    /// Size of the modeled packet window in bytes. The symbolic length
    /// is constrained to `min_pkt_len..=max_pkt_bytes`.
    pub max_pkt_bytes: usize,
    /// Minimum packet length assumed.
    pub min_pkt_len: u64,
    /// Maximum number of in-flight + finished states before aborting
    /// (the "12h+" guard for the generic baseline).
    pub max_states: usize,
    /// Per-path instruction budget; exceeding it ends the path with
    /// [`crate::SegOutcome::FuelExhausted`] (a bounded-execution suspect).
    pub max_instrs_per_path: u64,
    /// Whether to decide branch feasibility exactly (solver) or only
    /// with the cheap layers (may explore some infeasible segments,
    /// which step 2 then discards — still sound, slightly less sharp).
    pub exact_forks: bool,
    /// CDCL conflict budget for exact fork checks.
    pub fork_conflict_budget: u64,
    /// Packet access at a *symbolic* offset: `false` (dataplane-specific
    /// behavior) summarizes it as an if-then-else selection over the
    /// window; `true` (generic/S2E behavior) *concretizes by forking*
    /// one state per feasible offset — the §3.3 data-structure/array
    /// indexing blow-up ("branch into a thousand different segments").
    pub fork_on_symbolic_offset: bool,
}

impl Default for SymConfig {
    fn default() -> Self {
        SymConfig {
            max_pkt_bytes: 96,
            min_pkt_len: 0,
            max_states: 1 << 20,
            max_instrs_per_path: 10_000,
            exact_forks: true,
            fork_conflict_budget: 50_000,
            fork_on_symbolic_offset: false,
        }
    }
}

/// The symbolic input of one element execution: fresh variables for
/// every packet byte in the window, the packet length, and each
/// metadata slot.
///
/// The stored variable ids are the substitution points for step-2
/// composition: element B's `pkt_byte_vars[i]` is replaced by element
/// A's output byte term `i`, etc.
#[derive(Debug, Clone)]
pub struct SymInput {
    /// Byte terms (initially `Var`s), window-sized.
    pub pkt_bytes: Vec<TermId>,
    /// Length term (initially a `Var`), width 16.
    pub pkt_len: TermId,
    /// Metadata slot terms (initially `Var`s), width [`META_WIDTH`].
    pub meta: Vec<TermId>,
    /// Var ids of `pkt_bytes` (same order).
    pub pkt_byte_vars: Vec<u32>,
    /// Var id of `pkt_len`.
    pub len_var: u32,
    /// Var ids of `meta` (same order).
    pub meta_vars: Vec<u32>,
    /// Base constraints (length bounds) to conjoin into every segment.
    pub base_constraints: Vec<TermId>,
}

impl SymInput {
    /// Creates fresh unconstrained input variables with `prefix` in
    /// their debug names (e.g. `"e2"` for pipeline element 2).
    pub fn fresh(pool: &mut TermPool, cfg: &SymConfig, prefix: &str) -> Self {
        let mut pkt_bytes = Vec::with_capacity(cfg.max_pkt_bytes);
        let mut pkt_byte_vars = Vec::with_capacity(cfg.max_pkt_bytes);
        for i in 0..cfg.max_pkt_bytes {
            let v = pool.fresh_var(&format!("{prefix}.pkt[{i}]"), 8);
            pkt_byte_vars.push(var_id(pool, v));
            pkt_bytes.push(v);
        }
        let pkt_len = pool.fresh_var(&format!("{prefix}.len"), 16);
        let len_var = var_id(pool, pkt_len);
        let mut meta = Vec::with_capacity(META_SLOTS);
        let mut meta_vars = Vec::with_capacity(META_SLOTS);
        for s in 0..META_SLOTS {
            let v = pool.fresh_var(&format!("{prefix}.meta[{s}]"), META_WIDTH);
            meta_vars.push(var_id(pool, v));
            meta.push(v);
        }
        let min = pool.mk_const(16, cfg.min_pkt_len);
        let max = pool.mk_const(16, cfg.max_pkt_bytes as u64);
        let lo = pool.mk_ule(min, pkt_len);
        let hi = pool.mk_ule(pkt_len, max);
        SymInput {
            pkt_bytes,
            pkt_len,
            meta,
            pkt_byte_vars,
            len_var,
            meta_vars,
            base_constraints: vec![lo, hi],
        }
    }

    /// Builds an input whose packet/length/meta are *terms* (not fresh
    /// variables) — used by the generic whole-pipeline executor where
    /// element k's input is element k-1's output state.
    pub fn from_terms(
        pkt_bytes: Vec<TermId>,
        pkt_len: TermId,
        meta: Vec<TermId>,
        base_constraints: Vec<TermId>,
    ) -> Self {
        SymInput {
            pkt_bytes,
            pkt_len,
            meta,
            pkt_byte_vars: Vec::new(),
            len_var: u32::MAX,
            meta_vars: Vec::new(),
            base_constraints,
        }
    }
}

/// Recovers the var id of a `Var` term (panics otherwise).
fn var_id(pool: &TermPool, t: TermId) -> u32 {
    match *pool.get(t) {
        bvsolve::Term::Var { id, .. } => id,
        _ => panic!("expected a variable term"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_input_shapes() {
        let mut pool = TermPool::new();
        let cfg = SymConfig {
            max_pkt_bytes: 32,
            ..Default::default()
        };
        let inp = SymInput::fresh(&mut pool, &cfg, "e0");
        assert_eq!(inp.pkt_bytes.len(), 32);
        assert_eq!(inp.meta.len(), META_SLOTS);
        assert_eq!(pool.width(inp.pkt_len), 16);
        assert_eq!(pool.width(inp.pkt_bytes[5]), 8);
        assert_eq!(inp.base_constraints.len(), 2);
        assert_eq!(pool.var_name(inp.pkt_byte_vars[3]), "e0.pkt[3]");
    }
}
